//! Shard partitioning of the peer state.
//!
//! [`CsWorld`](crate::CsWorld) is a thin *router* over `S` independent
//! [`WorldShard`] partitions. Each shard owns the [`PeerArena`] columns
//! (and therefore the manager state — lint rule P1 proves manager state
//! is module-private, i.e. shard-safe) for the node ids the
//! deterministic [`ShardMap`] assigns to it. All shared, non-per-peer
//! state — the network substrate, boot-strap node, log server, RNG
//! streams, session records — stays on the router, which is what keeps
//! the RNG draw order of a sharded run byte-identical to the solo run.
//!
//! The map is round-robin (`id mod S`): stable (a pure function of the
//! id), total (defined for every id), and balanced — over any
//! contiguous id range the per-shard populations differ by at most one
//! (the bound the `shard_map_is_stable_total_balanced` proptest pins).
//! Round-robin also gives each partition a *dense* local id space
//! (`id / S`), so the S lookup spines together use the same memory as
//! one solo arena.
//!
//! Raw partition access (`shards[i]`, foreign-handle resolution) is
//! confined to `world.rs`/`arena.rs`/this file by lint rule A2.

use cs_net::NodeId;

use crate::arena::{PeerArena, PeerHandle};
use crate::peer::{Peer, PeerMut, PeerRef};

/// The deterministic `NodeId → shard` assignment: round-robin modulo
/// the shard count. See the module docs for its properties.
#[derive(Clone, Copy, Debug)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// A map over `shards` partitions (clamped to at least one).
    pub fn new(shards: usize) -> Self {
        ShardMap {
            shards: u32::try_from(shards.max(1)).unwrap_or(u32::MAX),
        }
    }

    /// Number of shard partitions (≥ 1).
    pub fn len(&self) -> usize {
        self.shards as usize
    }

    /// Never empty: there is always at least one partition.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shard owning `id`. Total and stable by construction.
    pub fn shard_of(&self, id: NodeId) -> usize {
        (id.0 % self.shards) as usize
    }
}

/// One shard's slice of the world: the arena partition holding every
/// peer the [`ShardMap`] assigns to this shard. The router resolves a
/// node id to its owning shard exactly once per access; manager code
/// never sees partition boundaries.
pub(crate) struct WorldShard {
    arena: PeerArena,
}

impl WorldShard {
    /// The partition for shard `shard_id` of an `stride`-way map.
    pub(crate) fn new(shard_id: u16, stride: u32) -> Self {
        WorldShard {
            arena: PeerArena::with_partition(shard_id, stride),
        }
    }

    /// Pre-size this partition's columns and lookup spine.
    pub(crate) fn reserve(&mut self, peers: usize) {
        self.arena.reserve(peers);
    }

    /// Live peers in this partition.
    pub(crate) fn len(&self) -> usize {
        self.arena.len()
    }

    /// Allocated slots in this partition (live + free).
    pub(crate) fn slots(&self) -> usize {
        self.arena.slots()
    }

    pub(crate) fn insert(&mut self, peer: Peer) -> PeerHandle {
        self.arena.insert(peer)
    }

    pub(crate) fn remove(&mut self, id: NodeId) -> bool {
        self.arena.remove(id)
    }

    pub(crate) fn handle_of(&self, id: NodeId) -> Option<PeerHandle> {
        self.arena.handle_of(id)
    }

    pub(crate) fn get(&self, h: PeerHandle) -> Option<PeerRef<'_>> {
        self.arena.get(h)
    }

    pub(crate) fn get_by_node(&self, id: NodeId) -> Option<PeerRef<'_>> {
        self.arena.get_by_node(id)
    }

    pub(crate) fn get_mut_by_node(&mut self, id: NodeId) -> Option<PeerMut<'_>> {
        self.arena.get_mut_by_node(id)
    }

    pub(crate) fn pair_mut(&mut self, a: NodeId, b: NodeId) -> Option<(PeerMut<'_>, PeerMut<'_>)> {
        self.arena.pair_mut(a, b)
    }

    /// Iterate this partition's live peers in node-id order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = PeerRef<'_>> {
        self.arena.iter()
    }
}

/// Two disjoint `&mut` shards, `(i, j)` in that order — the cross-shard
/// analogue of the arena's column split, used by the router's `two_mut`
/// when a partnership spans partitions.
pub(crate) fn shard_pair_mut(
    shards: &mut [WorldShard],
    i: usize,
    j: usize,
) -> (&mut WorldShard, &mut WorldShard) {
    assert_ne!(i, j, "pair of one shard");
    if i < j {
        let (lo, hi) = shards.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = shards.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_total_and_stable() {
        let m = ShardMap::new(4);
        assert_eq!(m.len(), 4);
        for id in 0..1000u32 {
            let s = m.shard_of(NodeId(id));
            assert!(s < 4);
            assert_eq!(s, m.shard_of(NodeId(id)), "stable across calls");
            assert_eq!(s, ShardMap::new(4).shard_of(NodeId(id)), "instance-free");
        }
    }

    #[test]
    fn map_is_balanced_within_one_over_contiguous_ranges() {
        for shards in [1usize, 2, 3, 4, 8] {
            let m = ShardMap::new(shards);
            for n in [1u32, 7, 64, 1000] {
                let mut counts = vec![0u32; shards];
                for id in 0..n {
                    counts[m.shard_of(NodeId(id))] += 1;
                }
                let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
                assert!(max - min <= 1, "S={shards} n={n}: {counts:?}");
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let m = ShardMap::new(0);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        assert_eq!(m.shard_of(NodeId(17)), 0);
    }

    #[test]
    fn shard_pair_mut_preserves_argument_order() {
        use crate::params::Params;
        use crate::peer::Peer;
        use cs_logging::UserId;
        use cs_net::{Bandwidth, NodeClass};
        use cs_sim::SimTime;

        let mut shards = vec![
            WorldShard::new(0, 3),
            WorldShard::new(1, 3),
            WorldShard::new(2, 3),
        ];
        // Id 5 has residue 2 → shard 2; id 0 → shard 0.
        for id in [5u32, 0] {
            let peer = Peer::new(
                NodeId(id),
                UserId(id),
                NodeClass::DirectConnect,
                Bandwidth::kbps(500),
                &Params::default(),
                SimTime::ZERO,
                0,
                SimTime::MAX,
                0,
                SimTime::MAX,
            );
            shards[id as usize % 3].insert(peer);
        }
        let (a, b) = shard_pair_mut(&mut shards, 2, 0);
        assert_eq!(a.get_by_node(NodeId(5)).unwrap().id, NodeId(5));
        assert_eq!(b.get_by_node(NodeId(0)).unwrap().id, NodeId(0));
    }
}
