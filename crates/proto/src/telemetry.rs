//! Protocol-level telemetry: windowed samples of simulator ground truth.
//!
//! [`ProtoTelemetry`] is a passive [`Observer`] that, once per aggregation
//! window, walks the live user population and records the protocol series
//! the paper's figures are built from — partners held, buffer occupancy,
//! per-sub-stream lag, mCache size, and join→ready latency — into the
//! shared [`MetricRegistry`]. Sampling is `O(peers)`, so it happens at the
//! window cadence (the paper's 5-minute status-report period by default),
//! not per event.
//!
//! Attach this observer *before* the engine-level
//! [`TelemetryObserver`](cs_telemetry::TelemetryObserver) in a
//! `MultiObserver`: both advance on the same window grid, so the sample
//! taken at a boundary-crossing event lands in the window that the
//! telemetry observer then closes.
//!
//! Series (all prefixed `proto_`, distinguishing simulator truth from the
//! `report_`-prefixed series the cs-logging bridge derives from the §V.A
//! log stream):
//!
//! | series | kind | meaning |
//! |---|---|---|
//! | `proto_peers_alive` | gauge | live user peers |
//! | `proto_peers_ready` | gauge | live users whose media player started |
//! | `proto_partners` | histogram | partners held, per live user per sample |
//! | `proto_mcache_size` | histogram | mCache entries, per live user per sample |
//! | `proto_buffer_occupancy_blocks` | histogram | contiguous blocks ahead of playback |
//! | `proto_substream_lag_blocks` | histogram | per-sub-stream lag vs the most advanced |
//! | `proto_join_ready_ms` | histogram | join→media-ready latency per session |

use std::cell::RefCell;
use std::rc::Rc;

use cs_sim::{Observer, SimTime};
use cs_telemetry::{MetricId, MetricRegistry};

use crate::world::CsWorld;

/// Windowed sampler of protocol state (see module docs).
pub struct ProtoTelemetry {
    registry: Rc<RefCell<MetricRegistry>>,
    interval: SimTime,
    next_sample: SimTime,
    /// Sessions whose join→ready latency has been recorded, by session
    /// index (sessions are append-only).
    ready_recorded: Vec<bool>,
    ids: Ids,
}

/// Pre-interned instrument ids (the sampler is cold-path, but interning
/// once keeps sample loops allocation-free).
struct Ids {
    peers_alive: MetricId,
    peers_ready: MetricId,
    partners: MetricId,
    mcache: MetricId,
    occupancy: MetricId,
    lag: MetricId,
    join_ready: MetricId,
}

impl ProtoTelemetry {
    /// A sampler over `registry`, sampling every `interval` starting from
    /// `start + interval`. A zero `interval` falls back to the default
    /// window.
    pub fn new(registry: Rc<RefCell<MetricRegistry>>, interval: SimTime, start: SimTime) -> Self {
        let interval = if interval == SimTime::ZERO {
            cs_telemetry::DEFAULT_WINDOW
        } else {
            interval
        };
        let ids = {
            let mut reg = registry.borrow_mut();
            Ids {
                peers_alive: reg.gauge("proto_peers_alive", &[]),
                peers_ready: reg.gauge("proto_peers_ready", &[]),
                partners: reg.histogram("proto_partners", &[]),
                mcache: reg.histogram("proto_mcache_size", &[]),
                occupancy: reg.histogram("proto_buffer_occupancy_blocks", &[]),
                lag: reg.histogram("proto_substream_lag_blocks", &[]),
                join_ready: reg.histogram("proto_join_ready_ms", &[]),
            }
        };
        ProtoTelemetry {
            registry,
            interval,
            next_sample: start + interval,
            ready_recorded: Vec::new(),
            ids,
        }
    }

    /// Walk the world and record one sample. Called automatically on the
    /// window cadence; call once more at the run end (before the final
    /// window flush) so the partial window carries fresh gauges.
    pub fn sample(&mut self, world: &CsWorld) {
        let mut reg = self.registry.borrow_mut();
        let mut alive: i64 = 0;
        let mut ready: i64 = 0;
        for peer in world.peers().filter(|p| p.class.is_user()) {
            alive += 1;
            if peer.media_ready().is_some() {
                ready += 1;
            }
            reg.observe(self.ids.partners, peer.partners().len() as u64);
            reg.observe(self.ids.mcache, peer.mcache().len() as u64);
            if let Some(buf) = peer.buffer() {
                let occupancy = buf
                    .contiguous_edge()
                    .map(|e| (e + 1).saturating_sub(peer.next_play()))
                    .unwrap_or(0);
                reg.observe(self.ids.occupancy, occupancy);
                for i in 0..buf.substreams() {
                    reg.observe(self.ids.lag, buf.lag(i));
                }
            }
        }
        reg.set(self.ids.peers_alive, alive);
        reg.set(self.ids.peers_ready, ready);

        // Join→ready latency for sessions that became ready since the
        // last sample.
        if self.ready_recorded.len() < world.sessions.len() {
            self.ready_recorded.resize(world.sessions.len(), false);
        }
        for (i, s) in world.sessions.iter().enumerate() {
            let Some(flag) = self.ready_recorded.get_mut(i) else {
                continue;
            };
            if *flag {
                continue;
            }
            if let Some(ready_at) = s.ready {
                *flag = true;
                let ms = ready_at.saturating_sub(s.join).as_micros() / 1_000;
                reg.observe(self.ids.join_ready, ms);
            }
        }
    }
}

impl Observer<CsWorld> for ProtoTelemetry {
    #[inline]
    fn after_handle(&mut self, now: SimTime, world: &CsWorld) {
        if now < self.next_sample {
            return;
        }
        while self.next_sample <= now {
            self.next_sample += self.interval;
        }
        self.sample(world);
    }
}
