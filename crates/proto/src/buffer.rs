//! Per-node stream buffering — Fig. 2 of the paper.
//!
//! The video stream is split into `K` sub-streams; block `n` (global
//! sequence number) belongs to sub-stream `n mod K`. Each node keeps one
//! *synchronization buffer* per sub-stream; blocks become playable when the
//! *combination process* finds contiguous sequence numbers across all
//! sub-streams (Fig. 2b: combination stops at the sub-stream still awaiting
//! block 8).
//!
//! Within one sub-stream, delivery is in order (a sub-stream is a TCP push
//! from a single parent), so the sync buffer per sub-stream reduces to the
//! *newest received sequence number* `H_{S_i}` — exactly the quantity the
//! paper's inequalities (1) and (2) are written over. Holes only exist
//! *across* sub-streams, which is what `T_s` monitors.

use serde::{Deserialize, Serialize};

/// A node's buffer state across all sub-streams.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamBuffer {
    k: u32,
    /// First global sequence number this node wants (chosen at join,
    /// §IV.A: `m − T_p`).
    start_seq: u64,
    /// Newest received global seq per sub-stream; `None` until the first
    /// block of that sub-stream arrives.
    latest: Vec<Option<u64>>,
    /// Fractional block credit per sub-stream (fluid-model remainder of
    /// the parent push schedule).
    credit: Vec<f64>,
    /// Skipped-block ranges: blocks that were pushed out of every parent's
    /// cache window before this node could fetch them (§IV.A problem 1).
    /// Each entry `(s, e)` covers blocks `s, s+K, …, e` of sub-stream
    /// `s mod K`. These blocks count as *missed* at playback.
    holes: Vec<(u64, u64)>,
}

impl StreamBuffer {
    /// Fresh buffer wanting blocks from `start_seq` onwards.
    pub fn new(k: u32, start_seq: u64) -> Self {
        assert!(k >= 1);
        StreamBuffer {
            k,
            start_seq,
            latest: vec![None; k as usize],
            credit: vec![0.0; k as usize],
            holes: Vec::new(),
        }
    }

    /// Number of sub-streams.
    #[inline]
    pub fn substreams(&self) -> u32 {
        self.k
    }

    /// The join-time start position.
    #[inline]
    pub fn start_seq(&self) -> u64 {
        self.start_seq
    }

    /// Smallest wanted global seq belonging to sub-stream `i`.
    #[inline]
    pub fn first_wanted(&self, i: u32) -> u64 {
        let k = self.k as u64;
        let r = self.start_seq % k;
        let i = i as u64;
        if i >= r {
            self.start_seq + (i - r)
        } else {
            self.start_seq + (k - r) + i
        }
    }

    /// Newest received global seq in sub-stream `i`.
    #[inline]
    pub fn latest(&self, i: u32) -> Option<u64> {
        self.latest[i as usize]
    }

    /// Newest received seq across all sub-streams (`max_i H_{S_i}`).
    pub fn max_latest(&self) -> Option<u64> {
        self.latest.iter().flatten().copied().max()
    }

    /// The next block this node still needs from sub-stream `i`.
    #[inline]
    pub fn next_missing(&self, i: u32) -> u64 {
        match self.latest[i as usize] {
            Some(h) => h + self.k as u64,
            None => self.first_wanted(i),
        }
    }

    /// Blocks received in sub-stream `i` so far.
    pub fn received_in(&self, i: u32) -> u64 {
        match self.latest[i as usize] {
            Some(h) => (h - self.first_wanted(i)) / self.k as u64 + 1,
            None => 0,
        }
    }

    /// How far sub-stream `i` lags the most advanced sub-stream, in global
    /// sequence numbers. This is the node-local deviation that inequality
    /// (1) compares against `T_s`.
    pub fn lag(&self, i: u32) -> u64 {
        match self.max_latest() {
            None => 0,
            Some(maxh) => {
                // An empty sub-stream lags from one block before its first
                // wanted seq.
                let h = self.latest[i as usize]
                    .unwrap_or_else(|| self.first_wanted(i).saturating_sub(self.k as u64));
                maxh.saturating_sub(h)
            }
        }
    }

    /// Worst lag across sub-streams.
    pub fn max_lag(&self) -> u64 {
        (0..self.k).map(|i| self.lag(i)).max().unwrap_or(0)
    }

    /// Whether block `n` is in the buffer.
    pub fn has_block(&self, n: u64) -> bool {
        if n < self.start_seq {
            return false;
        }
        let k = self.k as u64;
        let i = (n % k) as u32; // cs-lint: allow(lossy-cast) — n % k < k, and k is self.k widened from u32
        if !matches!(self.latest[i as usize], Some(h) if n <= h) {
            return false;
        }
        // A block inside a skipped range was never actually received.
        !self
            .holes
            .iter()
            .any(|&(s, e)| n >= s && n <= e && (n - s) % k == 0)
    }

    /// Skipped-block ranges recorded by [`skip_to`](Self::skip_to).
    pub fn holes(&self) -> &[(u64, u64)] {
        &self.holes
    }

    /// Deliver `count` in-order blocks on sub-stream `i` (the parent push).
    /// Returns the new newest seq.
    pub fn advance(&mut self, i: u32, count: u64) -> Option<u64> {
        if count == 0 {
            return self.latest[i as usize];
        }
        let k = self.k as u64;
        let new = match self.latest[i as usize] {
            Some(h) => h + count * k,
            None => self.first_wanted(i) + (count - 1) * k,
        };
        self.latest[i as usize] = Some(new);
        Some(new)
    }

    /// Fast-forward sub-stream `i` past blocks that no parent can serve
    /// any more (they fell out of every cache window, §IV.A problem 1).
    /// The skipped blocks are recorded as a hole — they count as missed at
    /// playback — and delivery resumes from the first block after `bound`.
    /// Returns the number of blocks skipped.
    pub fn skip_to(&mut self, i: u32, bound: u64) -> u64 {
        let k = self.k as u64;
        let i64 = i as u64;
        if bound < self.first_wanted(i) {
            return 0;
        }
        // Largest seq ≤ bound with seq % k == i.
        let aligned = bound - ((bound % k + k - i64) % k);
        let from = self.next_missing(i);
        if aligned < from {
            return 0;
        }
        let skipped = (aligned - from) / k + 1;
        if self.holes.len() < 256 {
            self.holes.push((from, aligned));
        }
        self.latest[i as usize] = Some(aligned);
        skipped
    }

    /// The newest global seq `n` such that *every* block in
    /// `[start_seq, n]` has been received — the output edge of the
    /// combination process. `None` until every sub-stream has produced its
    /// first wanted block.
    pub fn contiguous_edge(&self) -> Option<u64> {
        let min_next = (0..self.k).map(|i| self.next_missing(i)).min()?;
        min_next.checked_sub(1).filter(|&e| e >= self.start_seq)
    }

    /// Contiguously buffered blocks past the start position (the media
    /// player's fill level).
    pub fn contiguous_len(&self) -> u64 {
        match self.contiguous_edge() {
            Some(e) => e - self.start_seq + 1,
            None => 0,
        }
    }

    /// Mutable fractional credit for sub-stream `i`.
    pub fn credit_mut(&mut self, i: u32) -> &mut f64 {
        &mut self.credit[i as usize]
    }

    /// Produce the buffer map advertised to partners.
    pub fn buffer_map(&self, subscribed: &[bool]) -> BufferMap {
        debug_assert_eq!(subscribed.len(), self.k as usize);
        BufferMap {
            latest: self.latest.clone(),
            subscribed: subscribed.to_vec(),
        }
    }
}

/// The buffer map (BM) of §III.C: a `2K`-tuple with the newest received
/// sequence number of each sub-stream and the sub-stream subscription
/// flags.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferMap {
    /// Newest received global seq per sub-stream.
    pub latest: Vec<Option<u64>>,
    /// Which sub-streams the node currently subscribes to from a partner.
    pub subscribed: Vec<bool>,
}

impl BufferMap {
    /// Number of sub-streams described.
    pub fn substreams(&self) -> u32 {
        u32::try_from(self.latest.len()).unwrap_or(u32::MAX)
    }

    /// Newest seq across sub-streams.
    pub fn max_latest(&self) -> Option<u64> {
        self.latest.iter().flatten().copied().max()
    }

    /// Wire encoding: `K` little-endian `u64`s (`seq + 1`, 0 = none)
    /// followed by a subscription bitmask, one byte per 8 sub-streams.
    pub fn encode(&self) -> Vec<u8> {
        let k = self.latest.len();
        let mut out = Vec::with_capacity(k * 8 + k.div_ceil(8));
        for l in &self.latest {
            let v = l.map(|s| s + 1).unwrap_or(0);
            out.extend_from_slice(&v.to_le_bytes());
        }
        let mut mask = vec![0u8; k.div_ceil(8)];
        for (i, &s) in self.subscribed.iter().enumerate() {
            if s {
                mask[i / 8] |= 1 << (i % 8);
            }
        }
        out.extend_from_slice(&mask);
        out
    }

    /// Decode [`encode`](Self::encode) output for `k` sub-streams.
    pub fn decode(k: u32, bytes: &[u8]) -> Option<BufferMap> {
        let ku = k as usize;
        let need = ku * 8 + ku.div_ceil(8);
        if bytes.len() != need {
            return None;
        }
        let mut latest = Vec::with_capacity(ku);
        for i in 0..ku {
            let v = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().ok()?);
            latest.push(v.checked_sub(1));
        }
        let mask = &bytes[ku * 8..];
        let subscribed = (0..ku).map(|i| mask[i / 8] & (1 << (i % 8)) != 0).collect();
        Some(BufferMap { latest, subscribed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_wanted_is_aligned_and_minimal() {
        let b = StreamBuffer::new(4, 10);
        // start 10: substream 2 gets 10, 3→11, 0→12, 1→13.
        assert_eq!(b.first_wanted(2), 10);
        assert_eq!(b.first_wanted(3), 11);
        assert_eq!(b.first_wanted(0), 12);
        assert_eq!(b.first_wanted(1), 13);
        for i in 0..4 {
            assert_eq!(b.first_wanted(i) % 4, i as u64);
            assert!(b.first_wanted(i) >= 10 && b.first_wanted(i) < 14);
        }
    }

    #[test]
    fn advance_and_contiguity() {
        let mut b = StreamBuffer::new(4, 0);
        assert_eq!(b.contiguous_edge(), None);
        b.advance(0, 3); // blocks 0,4,8
        b.advance(1, 2); // blocks 1,5
        b.advance(2, 2); // blocks 2,6
                         // Substream 3 still empty: 0..=2 are contiguous, 3 is missing.
        assert_eq!(b.contiguous_edge(), Some(2));
        b.advance(3, 1); // block 3
                         // Now 0..=6 present except 7; edge = 6.
        assert_eq!(b.contiguous_edge(), Some(6));
        assert_eq!(b.contiguous_len(), 7);
        b.advance(3, 1); // block 7
        assert_eq!(b.contiguous_edge(), Some(8));
    }

    #[test]
    fn fig2b_combination_stops_at_awaited_block() {
        // Fig. 2b: 4 sub-streams, combination stops awaiting block 8 on
        // sub-stream 4 (index 3 with 1-based→0-based shift). Model: blocks
        // 0..=7 received plus extras on other sub-streams; edge stays 7
        // until block 8 arrives.
        let mut b = StreamBuffer::new(4, 0);
        for i in 0..4 {
            b.advance(i, 2); // 0..=7 all received
        }
        b.advance(1, 1); // block 9
        b.advance(2, 1); // block 10
        assert_eq!(b.contiguous_edge(), Some(7)); // awaiting 8
        b.advance(0, 1); // block 8 arrives
        assert_eq!(b.contiguous_edge(), Some(10));
    }

    #[test]
    fn lag_tracks_worst_substream() {
        let mut b = StreamBuffer::new(2, 0);
        b.advance(0, 10); // newest seq 18
        b.advance(1, 1); // newest seq 1
        assert_eq!(b.max_latest(), Some(18));
        assert_eq!(b.lag(1), 17);
        assert_eq!(b.lag(0), 0);
        assert_eq!(b.max_lag(), 17);
    }

    #[test]
    fn lag_counts_empty_substream_from_start() {
        let mut b = StreamBuffer::new(2, 0);
        b.advance(0, 5); // newest 8
                         // Substream 1 empty: treated as at first_wanted - k = -1 → 0-ish.
        assert!(b.lag(1) >= 8);
    }

    #[test]
    fn has_block_respects_start_and_latest() {
        let mut b = StreamBuffer::new(3, 7);
        b.advance(1, 2); // substream 1: first wanted 7, blocks 7,10
        assert!(b.has_block(7));
        assert!(b.has_block(10));
        assert!(!b.has_block(13));
        assert!(!b.has_block(4)); // before start
        assert!(!b.has_block(8)); // substream 2 empty
    }

    #[test]
    fn skip_to_fast_forwards_and_records_holes() {
        let mut b = StreamBuffer::new(4, 0);
        b.advance(2, 1); // block 2 received
                         // Skip past blocks 6, 10, 14 (largest ≡2 mod 4 ≤ 17 is 14).
        assert_eq!(b.skip_to(2, 17), 3);
        assert_eq!(b.latest(2), Some(14));
        // The skipped blocks are holes, the received one is not.
        assert!(b.has_block(2));
        for n in [6, 10, 14] {
            assert!(!b.has_block(n), "skipped block {n} reported present");
        }
        // Skipping backwards is a no-op.
        assert_eq!(b.skip_to(2, 9), 0);
        assert_eq!(b.latest(2), Some(14));
        // Below first wanted is a no-op.
        assert_eq!(b.skip_to(3, 1), 0);
        assert_eq!(b.latest(3), None);
        assert_eq!(b.holes().len(), 1);
    }

    #[test]
    fn holes_do_not_break_contiguity_tracking() {
        let mut b = StreamBuffer::new(2, 0);
        b.skip_to(0, 4); // holes at 0,2,4
        b.advance(0, 1); // block 6
        b.advance(1, 4); // blocks 1,3,5,7
                         // Edge advances past holes (they are "resolved" as lost).
        assert_eq!(b.contiguous_edge(), Some(7));
        assert!(!b.has_block(4));
        assert!(b.has_block(6));
    }

    #[test]
    fn received_in_counts_blocks() {
        let mut b = StreamBuffer::new(4, 8);
        assert_eq!(b.received_in(0), 0);
        b.advance(0, 3);
        assert_eq!(b.received_in(0), 3);
    }

    #[test]
    fn buffer_map_encode_decode_round_trip() {
        let mut b = StreamBuffer::new(5, 3);
        b.advance(0, 2);
        b.advance(3, 7);
        let bm = b.buffer_map(&[true, false, false, true, false]);
        let bytes = bm.encode();
        let back = BufferMap::decode(5, &bytes).unwrap();
        assert_eq!(back, bm);
        assert_eq!(back.max_latest(), bm.max_latest());
        // Wrong length rejected.
        assert!(BufferMap::decode(4, &bytes).is_none());
    }

    #[test]
    fn credit_accumulates() {
        let mut b = StreamBuffer::new(2, 0);
        *b.credit_mut(0) += 1.5;
        *b.credit_mut(0) += 0.7;
        assert!((*b.credit_mut(0) - 2.2).abs() < 1e-12);
    }
}
