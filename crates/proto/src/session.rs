//! Ground-truth session records.
//!
//! One record per node incarnation (a user who retries produces several).
//! These are the simulator's *actual* values; the log-derived view in
//! `cs-analysis` may differ from them exactly where the paper's
//! measurement methodology loses information — several integration tests
//! assert both the agreements and the expected disagreements.

use cs_logging::UserId;
use cs_net::{Bandwidth, NodeClass, NodeId};
use cs_sim::{DetMap, SimTime};
use serde::{Deserialize, Serialize};

use crate::world::CsWorld;

/// Why a session ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DepartReason {
    /// The user watched as long as intended.
    Finished,
    /// The user gave up waiting for the media player to start.
    Impatient,
    /// Playback quality collapsed; the client departed to re-enter
    /// (§V.D: NAT/firewall users "simply depart and re-enter the overlay
    /// during peer churns").
    GiveUp,
    /// A correlated regional outage (chaos injection) cut the session
    /// short; the user may re-enter once the partition heals.
    Outage,
    /// The run's horizon ended while the session was live.
    StillActive,
}

/// Ground truth for one session (one node incarnation).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Stable user identity.
    pub user: UserId,
    /// This incarnation's node id.
    pub node: NodeId,
    /// Ground-truth connection class (the log only sees the inferred one).
    pub class: NodeClass,
    /// Uplink capacity assigned to this node.
    pub upload: Bandwidth,
    /// 0 for a first attempt, n for the n-th retry.
    pub retry_index: u32,
    /// Join time.
    pub join: SimTime,
    /// Start-subscription time, if reached.
    pub start_sub: Option<SimTime>,
    /// Media-player-ready time, if reached.
    pub ready: Option<SimTime>,
    /// Leave time, if the session ended within the run.
    pub leave: Option<SimTime>,
    /// Why it ended.
    pub reason: Option<DepartReason>,
    /// Total bytes uploaded over the session.
    pub up_bytes: u64,
    /// Total bytes downloaded over the session.
    pub down_bytes: u64,
    /// Total blocks due at playback deadlines.
    pub due: u64,
    /// Total blocks missed at their deadline.
    pub missed: u64,
    /// Total peer adaptations performed.
    pub adaptations: u32,
}

impl SessionRecord {
    /// Session duration (leave − join), if complete.
    pub fn duration(&self) -> Option<SimTime> {
        self.leave.map(|l| l.saturating_sub(self.join))
    }

    /// Start-subscription delay (start_sub − join).
    pub fn start_sub_delay(&self) -> Option<SimTime> {
        self.start_sub.map(|t| t.saturating_sub(self.join))
    }

    /// Media-ready delay (ready − join).
    pub fn ready_delay(&self) -> Option<SimTime> {
        self.ready.map(|t| t.saturating_sub(self.join))
    }

    /// Ground-truth continuity index over the whole session.
    pub fn continuity(&self) -> Option<f64> {
        if self.due == 0 {
            None
        } else {
            Some(1.0 - self.missed as f64 / self.due as f64)
        }
    }

    /// Whether this was a *normal session* in the paper's sense (§V.C):
    /// join → start subscription → media ready → leave.
    pub fn is_normal(&self) -> bool {
        self.start_sub.is_some() && self.ready.is_some() && self.leave.is_some()
    }
}

/// Mark every still-live session as [`DepartReason::StillActive`] at the
/// end of a run so analysis can distinguish truncation from departure.
pub fn finalize_sessions(world: &mut CsWorld) {
    let ids: Vec<NodeId> = world
        .net
        .iter_alive()
        .filter(|n| n.class.is_user())
        .map(|n| n.id)
        .collect();
    for id in ids {
        let rec = &mut world.sessions[id.index()];
        if rec.reason.is_none() {
            rec.reason = Some(DepartReason::StillActive);
        }
    }
}

/// A map from user id to the ground-truth class of its first session —
/// convenient for per-class analysis joins.
pub fn user_classes(world: &CsWorld) -> DetMap<UserId, NodeClass> {
    let mut map = DetMap::new();
    for rec in &world.sessions {
        if rec.class.is_user() {
            map.entry(rec.user).or_insert(rec.class);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> SessionRecord {
        SessionRecord {
            user: UserId(1),
            node: NodeId(5),
            class: NodeClass::Nat,
            upload: Bandwidth::kbps(300),
            retry_index: 0,
            join: SimTime::from_secs(100),
            start_sub: Some(SimTime::from_secs(103)),
            ready: Some(SimTime::from_secs(115)),
            leave: Some(SimTime::from_secs(700)),
            reason: Some(DepartReason::Finished),
            up_bytes: 1000,
            down_bytes: 2000,
            due: 200,
            missed: 4,
            adaptations: 3,
        }
    }

    #[test]
    fn derived_times() {
        let r = rec();
        assert_eq!(r.duration(), Some(SimTime::from_secs(600)));
        assert_eq!(r.start_sub_delay(), Some(SimTime::from_secs(3)));
        assert_eq!(r.ready_delay(), Some(SimTime::from_secs(15)));
        assert!(r.is_normal());
    }

    #[test]
    fn continuity_math() {
        let r = rec();
        assert!((r.continuity().unwrap() - 0.98).abs() < 1e-12);
        let mut empty = rec();
        empty.due = 0;
        assert_eq!(empty.continuity(), None);
    }

    #[test]
    fn incomplete_session_is_not_normal() {
        let mut r = rec();
        r.ready = None;
        assert!(!r.is_normal());
        assert_eq!(r.ready_delay(), None);
    }
}
