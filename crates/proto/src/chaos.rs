//! The chaos injector (scenario DSL `events` section, DESIGN.md §10).
//!
//! A fourth manager next to membership/partnership/stream: it owns the
//! timed chaos injections a scenario file can schedule — server
//! restarts, correlated regional outages, connectivity-policy shifts,
//! upload-capacity skew and free-rider conversion. (Server *crashes*
//! and boot-strap flaps predate the DSL and stay with the membership
//! manager: `Membership::crash_server` / `Membership::set_bootstrap`.)
//!
//! Every handler is deterministic integer/state manipulation — no
//! entropy, no ambient clocks — so injections preserve trace-hash
//! reproducibility: the same scenario file and seed replay the same
//! event sequence byte for byte.

use cs_logging::UserId;
use cs_net::{Bandwidth, ConnectivityPolicy, NodeClass, NodeId};
use cs_sim::{Ctx, SimTime};

use crate::partnership::Partnership;
use crate::peer::Peer;
use crate::session::DepartReason;
use crate::world::{CsWorld, Event};

/// Uplink assigned to converted free-riders: the capacity model's hard
/// floor ([`Bandwidth::FLOOR`]), i.e. effectively no useful contribution.
pub const FREE_RIDER_BPS: u64 = Bandwidth::FLOOR.0;

/// Spacing between staggered post-outage rejoins, so a healed partition
/// produces a ramp rather than a single thundering-herd timestamp.
const REJOIN_STAGGER: SimTime = SimTime(250_000); // 250 ms

/// The chaos manager: timed fault and population-shift injections over
/// the shared world.
pub(crate) struct Chaos<'w> {
    w: &'w mut CsWorld,
}

impl<'w> Chaos<'w> {
    /// Borrow the world as its chaos injector.
    pub(crate) fn of(w: &'w mut CsWorld) -> Self {
        Chaos { w }
    }
}

impl Chaos<'_> {
    /// Bring a crashed dedicated server back under its original node id:
    /// revive the network record, rebuild fresh peer state, reopen the
    /// session record, and restart its push rounds. The boot-strap
    /// tracker still lists the id (crash never deregisters servers), so
    /// joiners rediscover it as soon as it is alive again.
    pub(crate) fn restart_server(&mut self, ix: usize, now: SimTime, ctx: &mut Ctx<'_, Event>) {
        let Some(&id) = self.w.servers.get(ix) else {
            return;
        };
        if self.w.net.is_alive(id) {
            return;
        }
        self.w.net.revive_node(id, now);
        let bw = self.w.net.node(id).upload;
        self.w.revive_peer(Peer::new(
            id,
            UserId(u32::MAX - id.0),
            NodeClass::Server,
            bw,
            &self.w.params,
            now,
            0,
            SimTime::MAX,
            0,
            SimTime::MAX,
        ));
        let rec = &mut self.w.sessions[id.index()];
        rec.leave = None;
        rec.reason = None;
        ctx.schedule_in(self.w.params.sched_interval, Event::SchedRound(id));
    }

    /// Correlated regional outage: every live user peer whose coordinate
    /// falls in `quadrant` crashes now. Users with retries and watch
    /// time left re-enter from `heal` onwards (staggered), modelling the
    /// partition healing; `heal = SimTime::MAX` never heals.
    pub(crate) fn regional_outage(
        &mut self,
        quadrant: u8,
        heal: SimTime,
        now: SimTime,
        ctx: &mut Ctx<'_, Event>,
    ) {
        // Collect first: teardown mutates the registry under iteration.
        // `iter_alive` yields ascending node ids, so the teardown and
        // rejoin order is deterministic.
        let victims: Vec<NodeId> = self
            .w
            .net
            .iter_alive()
            .filter(|n| n.class.is_user() && n.coord.quadrant() == quadrant)
            .map(|n| n.id)
            .collect();
        let mut rejoined = 0u64;
        for id in victims {
            let retry = Partnership::of(self.w).depart(id, now, DepartReason::Outage);
            if let Some(spec) = retry {
                if heal > now && heal != SimTime::MAX {
                    ctx.schedule_at(heal + REJOIN_STAGGER * (rejoined % 64), Event::Arrive(spec));
                    rejoined += 1;
                }
            }
        }
    }

    /// NAT-share shift: swap the connectivity policy governing future
    /// node creations and connection attempts. Existing nodes keep their
    /// sampled `permissive` flag (middlebox behaviour is a property of
    /// the deployed box, not of the policy of the day).
    pub(crate) fn set_policy(&mut self, policy: ConnectivityPolicy) {
        self.w.net.set_policy(policy);
    }

    /// Upload-capacity skew: rescale every live user peer's uplink by
    /// `num / den` (integer arithmetic, floor-clamped to the capacity
    /// model's 8 kbps minimum). Infrastructure (source, servers) is
    /// never rescaled. Future arrivals keep their workload-sampled
    /// capacities.
    pub(crate) fn scale_uploads(&mut self, num: u32, den: u32) {
        if den == 0 {
            return;
        }
        let ids: Vec<NodeId> = self
            .w
            .net
            .iter_alive()
            .filter(|n| n.class.is_user())
            .map(|n| n.id)
            .collect();
        for id in ids {
            let old = self.w.net.node(id).upload.as_bps();
            let scaled = u128::from(old) * u128::from(num) / u128::from(den);
            let new = Bandwidth(
                u64::try_from(scaled)
                    .unwrap_or(u64::MAX)
                    .max(FREE_RIDER_BPS),
            );
            self.w.net.set_upload(id, new);
            if let Some(p) = self.w.peer_mut(id) {
                p.core.upload = new;
            }
        }
    }

    /// Free-rider conversion: clamp the uplink of a deterministic
    /// `per_mille` share of the live user population to the capacity
    /// floor. Selection hashes the stable node id (Knuth multiplicative),
    /// so which users free-ride is independent of arrival order and
    /// reproducible across runs.
    pub(crate) fn free_riders(&mut self, per_mille: u16) {
        let share = u64::from(per_mille.min(1000));
        let ids: Vec<NodeId> = self
            .w
            .net
            .iter_alive()
            .filter(|n| n.class.is_user() && selected(n.id, share))
            .map(|n| n.id)
            .collect();
        for id in ids {
            let floor = Bandwidth(FREE_RIDER_BPS);
            self.w.net.set_upload(id, floor);
            if let Some(p) = self.w.peer_mut(id) {
                p.core.upload = floor;
            }
        }
    }
}

/// Deterministic per-node selection: Knuth multiplicative hash of the
/// node id, reduced mod 1000 against the per-mille threshold.
fn selected(id: NodeId, per_mille: u64) -> bool {
    (u64::from(id.0).wrapping_mul(2_654_435_761) >> 16) % 1000 < per_mille
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::Membership;
    use crate::params::Params;
    use crate::world::UserSpec;
    use cs_net::{LatencyModel, Network};
    use cs_sim::Engine;

    /// Source (node 0) plus two dedicated servers (nodes 1, 2).
    fn tiny_world() -> CsWorld {
        let net = Network::new(ConnectivityPolicy::default(), LatencyModel::default(), 7);
        CsWorld::new(Params::default(), net, 2, Bandwidth::mbps(100), 7)
    }

    /// Drive a real engine so handlers get a live `Ctx`.
    fn run_events(world: CsWorld, events: Vec<(SimTime, Event)>, until: SimTime) -> CsWorld {
        let mut engine = Engine::new(world);
        for (t, e) in events {
            engine.schedule_at(t, e);
        }
        engine.run_until(until);
        engine.into_world()
    }

    fn spec(user: u32, class: NodeClass, upload: Bandwidth) -> UserSpec {
        UserSpec {
            user: UserId(user),
            class,
            upload,
            leave_at: SimTime::from_hours(2),
            patience: SimTime::from_secs(300),
            retries_left: 2,
            retry_index: 0,
        }
    }

    #[test]
    fn restart_revives_a_crashed_server() {
        let world = tiny_world();
        let server = world.servers[0];
        let world = run_events(
            world,
            vec![
                (SimTime::from_secs(10), Event::CrashServer(0)),
                (SimTime::from_secs(60), Event::RestartServer(0)),
            ],
            SimTime::from_secs(61),
        );
        assert!(world.net.is_alive(server), "server not revived");
        assert!(world.peer(server).is_some(), "peer state not rebuilt");
        assert_eq!(world.sessions[server.index()].leave, None);
        assert_eq!(world.net.node(server).joined_at, SimTime::from_secs(60));
    }

    #[test]
    fn restart_of_a_live_server_is_a_noop() {
        let world = tiny_world();
        let server = world.servers[1];
        let before_join = world.net.node(server).joined_at;
        let world = run_events(
            world,
            vec![(SimTime::from_secs(5), Event::RestartServer(1))],
            SimTime::from_secs(6),
        );
        assert!(world.net.is_alive(server));
        assert_eq!(world.net.node(server).joined_at, before_join);
    }

    #[test]
    fn restarted_server_resumes_push_rounds() {
        // The restart must reschedule SchedRound: run a full engine past
        // the restart and check the server keeps dispatching (its session
        // record stays open and its peer state persists).
        let world = tiny_world();
        let server = world.servers[0];
        let mut engine = Engine::new(world);
        for (t, e) in engine.world().initial_events() {
            engine.schedule_at(t, e);
        }
        engine.schedule_at(SimTime::from_secs(10), Event::CrashServer(0));
        engine.schedule_at(SimTime::from_secs(20), Event::RestartServer(0));
        engine.run_until(SimTime::from_secs(40));
        let world = engine.into_world();
        assert!(world.net.is_alive(server));
        assert!(world.peer(server).is_some());
    }

    /// Plant a user peer via the real arrival handler so teardown paths
    /// see fully consistent state.
    fn arrive_users(world: CsWorld, specs: Vec<UserSpec>, until: SimTime) -> CsWorld {
        let events = specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| (SimTime::from_secs(i as u64), Event::Arrive(s)))
            .collect();
        run_events(world, events, until)
    }

    #[test]
    fn outage_removes_quadrant_and_heals_with_rejoins() {
        let world = arrive_users(
            tiny_world(),
            (0..12)
                .map(|i| spec(i, NodeClass::DirectConnect, Bandwidth::mbps(2)))
                .collect(),
            SimTime::from_secs(30),
        );
        // Pick the quadrant holding the most live users.
        let mut per_quadrant = [0usize; 4];
        for n in world.net.iter_alive().filter(|n| n.class.is_user()) {
            per_quadrant[n.coord.quadrant() as usize] += 1;
        }
        let (q, &hit) = per_quadrant
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .unwrap();
        assert!(hit > 0, "no users in any quadrant");
        let users_before = world.net.iter_alive().filter(|n| n.class.is_user()).count();

        // One engine spans teardown AND heal: the rejoin arrivals live in
        // the same queue as the outage that scheduled them.
        let heal = SimTime::from_secs(120);
        let mut engine = Engine::new(world);
        engine.schedule_at(
            SimTime::from_secs(40),
            Event::RegionalOutage {
                quadrant: q as u8,
                heal,
            },
        );
        engine.run_until(SimTime::from_secs(41));
        {
            let w = engine.world();
            assert_eq!(w.stats.outage_departs, hit as u64, "wrong victim count");
            let users_mid = w.net.iter_alive().filter(|n| n.class.is_user()).count();
            assert_eq!(users_mid, users_before - hit, "victims not torn down");
            // No live user remains in the dead quadrant.
            assert!(w
                .net
                .iter_alive()
                .filter(|n| n.class.is_user())
                .all(|n| n.coord.quadrant() != q as u8));
        }

        // Heal: run past `heal` and the population recovers (every victim
        // had retries and hours of watch time left).
        engine.run_until(heal + SimTime::from_secs(60));
        let world = engine.into_world();
        let rejoined = world
            .sessions
            .iter()
            .filter(|s| s.class.is_user() && s.retry_index > 0 && s.join >= heal)
            .count();
        assert_eq!(rejoined, hit, "partition healed but users did not rejoin");
    }

    #[test]
    fn outage_without_heal_is_permanent() {
        let world = arrive_users(
            tiny_world(),
            (0..8)
                .map(|i| spec(i, NodeClass::Nat, Bandwidth::kbps(300)))
                .collect(),
            SimTime::from_secs(30),
        );
        let mut events = Vec::new();
        for q in 0..4 {
            events.push((
                SimTime::from_secs(40),
                Event::RegionalOutage {
                    quadrant: q,
                    heal: SimTime::MAX,
                },
            ));
        }
        let world = run_events(world, events, SimTime::from_hours(1));
        let live_users = world.net.iter_alive().filter(|n| n.class.is_user()).count();
        assert_eq!(live_users, 0, "unhealed outage must not rejoin anyone");
    }

    #[test]
    fn policy_shift_changes_future_sampling_deterministically() {
        let mut world = tiny_world();
        Chaos::of(&mut world).set_policy(ConnectivityPolicy::strict());
        assert_eq!(world.net.policy().nat_accept_prob, 0.0);
        // Nodes created after the shift can never be permissive.
        for i in 0..50 {
            let id = world
                .net
                .add_node(NodeClass::Nat, Bandwidth::kbps(300), SimTime::ZERO);
            assert!(!world.net.node(id).permissive, "node {i} permissive");
        }
        // And the shift is pure state: two identically-seeded worlds
        // agree on every subsequent sample.
        let mut a = tiny_world();
        let mut b = tiny_world();
        Chaos::of(&mut a).set_policy(ConnectivityPolicy::strict());
        Chaos::of(&mut b).set_policy(ConnectivityPolicy::strict());
        for _ in 0..20 {
            let na = a
                .net
                .add_node(NodeClass::Firewall, Bandwidth::kbps(300), SimTime::ZERO);
            let nb = b
                .net
                .add_node(NodeClass::Firewall, Bandwidth::kbps(300), SimTime::ZERO);
            assert_eq!(a.net.node(na).coord, b.net.node(nb).coord);
            assert_eq!(a.net.node(na).permissive, b.net.node(nb).permissive);
        }
    }

    #[test]
    fn scale_uploads_rescales_users_only() {
        let mut world = arrive_users(
            tiny_world(),
            vec![
                spec(0, NodeClass::DirectConnect, Bandwidth::mbps(4)),
                spec(1, NodeClass::Nat, Bandwidth::kbps(400)),
            ],
            SimTime::from_secs(30),
        );
        let server_bw = world.net.node(world.servers[0]).upload;
        Chaos::of(&mut world).scale_uploads(1, 4);
        let users: Vec<_> = world
            .net
            .iter_alive()
            .filter(|n| n.class.is_user())
            .collect();
        assert_eq!(users.len(), 2);
        for n in &users {
            let expect = match n.class {
                NodeClass::DirectConnect => Bandwidth::mbps(4).as_bps() / 4,
                _ => Bandwidth::kbps(400).as_bps() / 4,
            };
            assert_eq!(n.upload.as_bps(), expect);
            // Peer state mirrors the registry.
            assert_eq!(world.peer(n.id).unwrap().upload, n.upload);
        }
        assert_eq!(
            world.net.node(world.servers[0]).upload,
            server_bw,
            "infrastructure must not be rescaled"
        );
    }

    #[test]
    fn scale_uploads_clamps_to_floor_and_ignores_zero_den() {
        let mut world = arrive_users(
            tiny_world(),
            vec![spec(0, NodeClass::Nat, Bandwidth::kbps(16))],
            SimTime::from_secs(10),
        );
        let id = world
            .net
            .iter_alive()
            .find(|n| n.class.is_user())
            .unwrap()
            .id;
        Chaos::of(&mut world).scale_uploads(1, 1000);
        assert_eq!(world.net.node(id).upload.as_bps(), FREE_RIDER_BPS);
        let before = world.net.node(id).upload;
        Chaos::of(&mut world).scale_uploads(3, 0);
        assert_eq!(world.net.node(id).upload, before, "den=0 must be a no-op");
    }

    #[test]
    fn free_riders_clamp_a_deterministic_share() {
        let world = arrive_users(
            tiny_world(),
            (0..40)
                .map(|i| spec(i, NodeClass::Upnp, Bandwidth::mbps(2)))
                .collect(),
            SimTime::from_secs(60),
        );
        let run = |mut w: CsWorld, pm: u16| -> Vec<NodeId> {
            Chaos::of(&mut w).free_riders(pm);
            w.net
                .iter_alive()
                .filter(|n| n.class.is_user() && n.upload.as_bps() == FREE_RIDER_BPS)
                .map(|n| n.id)
                .collect()
        };
        // per_mille = 0 touches nobody; 1000 touches everybody.
        assert!(run(
            arrive_users(
                tiny_world(),
                (0..10)
                    .map(|i| spec(i, NodeClass::Upnp, Bandwidth::mbps(2)))
                    .collect(),
                SimTime::from_secs(20),
            ),
            0
        )
        .is_empty());
        let hit_half = run(world, 500);
        assert!(
            hit_half.len() > 8 && hit_half.len() < 32,
            "selection share off: {}/40",
            hit_half.len()
        );
        // Same population, same threshold → the same nodes, every time.
        let again = run(
            arrive_users(
                tiny_world(),
                (0..40)
                    .map(|i| spec(i, NodeClass::Upnp, Bandwidth::mbps(2)))
                    .collect(),
                SimTime::from_secs(60),
            ),
            500,
        );
        assert_eq!(hit_half, again, "free-rider selection must be reproducible");
    }

    #[test]
    fn crash_and_bootstrap_flap_still_route_through_membership() {
        // Guard the dispatch table: the pre-DSL injections stay wired.
        let mut world = tiny_world();
        Membership::of(&mut world).set_bootstrap(false);
        assert!(!world.bootstrap_up);
        Membership::of(&mut world).crash_server(0, SimTime::from_secs(1));
        assert!(!world.net.is_alive(world.servers[0]));
    }
}
