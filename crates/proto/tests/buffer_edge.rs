//! `StreamBuffer` edge cases: sub-stream alignment wrap-around at the
//! head position, playout across starved (skipped) regions, and the
//! fluid-credit delivery bookkeeping checked against the closed-form
//! catch-up/starvation times of `cs-model` (Eq. 3 / Eq. 4).

use cs_proto::StreamBuffer;

// ---------------------------------------------------------------- head wrap

/// The start position rarely lands on sub-stream 0; the first wanted
/// block of each sub-stream wraps around the head (`start_seq % K`).
#[test]
fn first_wanted_wraps_around_head_for_every_residue() {
    for k in [1u32, 2, 3, 4, 6, 8] {
        for start in 0..(3 * k as u64) {
            let b = StreamBuffer::new(k, start);
            let mut firsts: Vec<u64> = (0..k).map(|i| b.first_wanted(i)).collect();
            for (i, &f) in firsts.iter().enumerate() {
                assert_eq!(f % k as u64, i as u64, "k={k} start={start} sub={i}");
                assert!(f >= start, "first wanted before the head");
                assert!(f < start + k as u64, "gap at the head");
            }
            // Together the K first-wanted blocks tile [start, start+K).
            firsts.sort_unstable();
            let expect: Vec<u64> = (start..start + k as u64).collect();
            assert_eq!(firsts, expect, "k={k} start={start}");
        }
    }
}

/// Immediately at the head, contiguity needs *every* sub-stream; the
/// sub-stream owning `start_seq` itself is the first gate.
#[test]
fn contiguity_at_head_requires_the_wrapping_substream() {
    let mut b = StreamBuffer::new(4, 10); // head block 10 is sub-stream 2
    b.advance(3, 1); // 11
    b.advance(0, 1); // 12
    b.advance(1, 1); // 13
    assert_eq!(b.contiguous_edge(), None, "head block 10 still missing");
    assert_eq!(b.contiguous_len(), 0);
    b.advance(2, 1); // 10 arrives
    assert_eq!(b.contiguous_edge(), Some(13));
    assert_eq!(b.contiguous_len(), 4);
}

/// `has_block` refuses blocks before the head even when the sub-stream's
/// newest seq technically covers them.
#[test]
fn blocks_before_head_are_never_present() {
    let mut b = StreamBuffer::new(3, 7); // sub-stream 1 first wants 7
    b.advance(1, 3); // 7, 10, 13
    assert!(b.has_block(7) && b.has_block(13));
    assert!(!b.has_block(4), "block before start_seq");
    assert!(!b.has_block(1), "block before start_seq");
}

// --------------------------------------------------------- starved playout

/// A playout pass walking over a skipped (starved) region counts the
/// skipped blocks as missed and everything after the region as present —
/// the §IV.A "blocks left every cache window" accounting.
#[test]
fn playout_past_starved_region_counts_holes_missed() {
    let k = 4u32;
    let mut b = StreamBuffer::new(k, 0);
    // Deliver the first 3 blocks of each sub-stream: 0..=11 all present.
    for i in 0..k {
        b.advance(i, 3);
    }
    // Sub-stream 1 starves: its parent's window moved past blocks 13, 17,
    // 21; delivery resumes at 25.
    let skipped = b.skip_to(1, 22);
    assert_eq!(skipped, 3);
    assert_eq!(b.latest(1), Some(21));
    b.advance(1, 1); // 25
                     // Fill the other sub-streams far enough to cover the same range.
    for i in [0u32, 2, 3] {
        b.advance(i, 4);
    }
    // The combination edge moved past the starved region…
    assert!(b.contiguous_edge().unwrap() >= 21);
    // …but a playout scan over [0, 24] misses exactly the 3 holes.
    let (mut due, mut missed) = (0u64, 0u64);
    for n in 0..25 {
        due += 1;
        if !b.has_block(n) {
            missed += 1;
        }
    }
    assert_eq!(due, 25);
    assert_eq!(missed, 3, "exactly the skipped blocks are missed");
    for n in [13u64, 17, 21] {
        assert!(!b.has_block(n), "hole {n} reported playable");
    }
    assert!(b.has_block(25), "delivery after the region is real");
}

/// Two disjoint starvation episodes on the same sub-stream leave two
/// independent holes; blocks delivered between them stay playable.
#[test]
fn repeated_starvation_leaves_disjoint_holes() {
    let mut b = StreamBuffer::new(2, 0);
    b.advance(0, 1); // block 0
    assert_eq!(b.skip_to(0, 4), 2); // holes 2, 4
    b.advance(0, 2); // blocks 6, 8
    assert_eq!(b.skip_to(0, 12), 2); // holes 10, 12
    b.advance(0, 1); // block 14
    assert_eq!(b.holes().len(), 2);
    for present in [0u64, 6, 8, 14] {
        assert!(b.has_block(present), "{present} should be present");
    }
    for hole in [2u64, 4, 10, 12] {
        assert!(!b.has_block(hole), "{hole} should be a hole");
    }
}

// ------------------------------------------------- Eq. (3)/(4) bookkeeping

/// Fluid-credit delivery at a parent rate `r_up` above the sub-stream
/// rate closes an `l`-block gap in exactly the Eq. (3) catch-up time.
#[test]
fn credit_delivery_matches_eq3_catch_up_time() {
    let k = 4u32;
    let substream_rate = 1.6f64; // blocks/s per sub-stream
    let r_up = 3.2f64; // parent pushes at 2× the sub-stream rate
    let gap_blocks = 16u64; // l, in this sub-stream's blocks
    let expect_secs = cs_model::catch_up_time(gap_blocks as f64, r_up, substream_rate)
        .expect("parent outruns the stream");
    assert_eq!(expect_secs, 10.0, "hand-computed Eq. (3) value");

    // The child starts `gap_blocks` behind the live edge of its
    // sub-stream; both advance in 1 s rounds.
    let mut b = StreamBuffer::new(k, 0);
    let mut edge_blocks = gap_blocks as f64; // parent's lead, in blocks
    let dt = 1.0f64;
    let mut elapsed = 0.0f64;
    loop {
        // The stream (and hence the parent's head) advances…
        edge_blocks += substream_rate * dt;
        // …and the parent pushes at r_up, capped by what exists.
        let have = b.received_in(0) as f64;
        let credit = b.credit_mut(0);
        *credit += r_up * dt;
        let deliver = (credit.floor()).min(edge_blocks.floor() - have).max(0.0) as u64;
        *credit -= deliver as f64;
        b.advance(0, deliver);
        elapsed += dt;
        let lag = edge_blocks.floor() as u64 - b.received_in(0);
        if lag == 0 {
            break;
        }
        assert!(elapsed < 100.0, "never caught up; lag {lag}");
    }
    // Continuous model: 10 s. The discrete loop rounds to whole blocks
    // per 1 s round, so allow one round of slack.
    assert!(
        (elapsed - expect_secs).abs() <= 1.0 + 1e-9,
        "caught up in {elapsed} s, Eq. (3) predicts {expect_secs} s"
    );
}

/// A parent serving below the sub-stream rate exhausts an `l`-block lag
/// budget in exactly the Eq. (4) starvation time.
#[test]
fn lag_growth_matches_eq4_starvation_time() {
    let substream_rate = 1.6f64;
    let r_down = 0.8f64; // half rate
    let budget_blocks = 16u64; // lag budget l
    let expect_secs = cs_model::starvation_time(budget_blocks as f64, r_down, substream_rate)
        .expect("rate below stream rate");
    assert_eq!(expect_secs, 20.0, "hand-computed Eq. (4) value");

    // The child starts synchronized (zero lag) and receives at r_down
    // while the stream advances at the sub-stream rate.
    let mut b = StreamBuffer::new(1, 0);
    let mut edge_blocks = 0.0f64;
    let dt = 1.0f64;
    let mut elapsed = 0.0f64;
    loop {
        edge_blocks += substream_rate * dt;
        let have = b.received_in(0) as f64;
        let credit = b.credit_mut(0);
        *credit += r_down * dt;
        let deliver = (credit.floor()).min(edge_blocks.floor() - have).max(0.0) as u64;
        *credit -= deliver as f64;
        b.advance(0, deliver);
        elapsed += dt;
        let lag = edge_blocks.floor() as u64 - b.received_in(0);
        if lag >= budget_blocks {
            break;
        }
        assert!(elapsed < 200.0, "never starved; lag {lag}");
    }
    assert!(
        (elapsed - expect_secs).abs() <= 2.0 + 1e-9,
        "starved in {elapsed} s, Eq. (4) predicts {expect_secs} s"
    );
}

/// Eq. (5) sanity on the same bookkeeping: a diluted rate is strictly
/// starving, and its Eq. (4) time agrees with the dilution formula.
#[test]
fn diluted_rate_plugs_into_eq4() {
    let substream_rate = 1.6f64;
    let d_p = 1u32;
    let r_down = cs_model::diluted_rate(d_p, substream_rate);
    assert!((r_down - 0.8).abs() < 1e-12);
    let t = cs_model::starvation_time(16.0, r_down, substream_rate).unwrap();
    // l / (R/K − D_p/(D_p+1)·R/K) = l·(D_p+1)/(R/K)
    let closed = 16.0 * (d_p as f64 + 1.0) / substream_rate;
    assert!((t - closed).abs() < 1e-9);
}
