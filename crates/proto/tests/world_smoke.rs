//! End-to-end smoke tests for the protocol world on small scenarios.

use cs_logging::{ActivityKind, Report, UserId};
use cs_net::{Bandwidth, ConnectivityPolicy, LatencyModel, Network, NodeClass};
use cs_proto::{finalize_sessions, CsWorld, Event, Params, UserSpec};
use cs_sim::{Engine, SimTime};

fn build_world(seed: u64, n_servers: usize) -> Engine<CsWorld> {
    let net = Network::new(ConnectivityPolicy::default(), LatencyModel::default(), seed);
    let world = CsWorld::new(
        Params::default(),
        net,
        n_servers,
        Bandwidth::mbps(100),
        seed,
    );
    let mut eng = Engine::new(world);
    for (t, e) in eng.world().initial_events() {
        eng.schedule_at(t, e);
    }
    eng
}

fn spec(user: u32, class: NodeClass, upload_kbps: u64, leave_s: u64) -> UserSpec {
    UserSpec {
        user: UserId(user),
        class,
        upload: Bandwidth::kbps(upload_kbps),
        leave_at: SimTime::from_secs(leave_s),
        patience: SimTime::from_secs(60),
        retries_left: 3,
        retry_index: 0,
    }
}

/// A handful of well-provisioned peers join a server-backed overlay: all
/// of them must reach media-ready, and the activity log must show the
/// normal-session event sequence of §V.C.
#[test]
fn small_overlay_reaches_media_ready() {
    let mut eng = build_world(11, 2);
    for u in 0..8 {
        let class = if u % 2 == 0 {
            NodeClass::DirectConnect
        } else {
            NodeClass::Nat
        };
        eng.schedule_at(
            SimTime::from_secs(5 + u as u64),
            Event::Arrive(spec(u, class, 1500, 500)),
        );
    }
    eng.run_until(SimTime::from_secs(300));
    let world = eng.world();

    let user_sessions: Vec<_> = world
        .sessions
        .iter()
        .filter(|s| s.class.is_user())
        .collect();
    assert_eq!(user_sessions.len(), 8);
    for s in &user_sessions {
        assert!(
            s.ready.is_some(),
            "user {:?} never reached media-ready: {s:?}",
            s.user
        );
        let delay = s.ready_delay().unwrap();
        assert!(
            delay >= SimTime::from_secs(5),
            "media-ready implausibly fast: {delay:?}"
        );
        assert!(
            delay <= SimTime::from_secs(60),
            "media-ready too slow for a healthy overlay: {delay:?}"
        );
        // Event ordering: join ≤ start_sub ≤ ready.
        assert!(s.start_sub.unwrap() >= s.join);
        assert!(s.ready.unwrap() >= s.start_sub.unwrap());
    }

    // The log contains the full normal-session sequence for each user.
    let (reports, bad) = world.log.parse_all();
    assert!(bad.is_empty());
    for u in 0..8u32 {
        let kinds: Vec<ActivityKind> = reports
            .iter()
            .filter_map(|(_, r)| match r {
                Report::Activity { user, kind, .. } if user.0 == u => Some(*kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds[0], ActivityKind::Join, "user {u}: {kinds:?}");
        assert!(kinds.contains(&ActivityKind::StartSubscription));
        assert!(kinds.contains(&ActivityKind::MediaReady));
    }
}

/// Continuity must be high once streaming in an uncongested overlay.
#[test]
fn healthy_overlay_has_high_continuity() {
    let mut eng = build_world(12, 2);
    for u in 0..10 {
        eng.schedule_at(
            SimTime::from_secs(5),
            Event::Arrive(spec(u, NodeClass::DirectConnect, 2000, 1800)),
        );
    }
    eng.run_until(SimTime::from_secs(900));
    finalize_sessions(eng.world_mut());
    let world = eng.world();
    for s in world.sessions.iter().filter(|s| s.class.is_user()) {
        let ci = s.continuity().expect("peers played for minutes");
        assert!(ci > 0.95, "continuity {ci} for {:?}", s.user);
    }
    // Status reports exist (run is longer than the 5-minute period).
    let (reports, _) = world.log.parse_all();
    assert!(reports.iter().any(|(_, r)| matches!(r, Report::Qos { .. })));
    assert!(reports
        .iter()
        .any(|(_, r)| matches!(r, Report::Traffic { .. })));
    assert!(reports
        .iter()
        .any(|(_, r)| matches!(r, Report::Partner { .. })));
}

/// Same seed ⇒ byte-identical logs; different seed ⇒ different logs.
#[test]
fn runs_are_deterministic_in_the_seed() {
    let run = |seed: u64| {
        let mut eng = build_world(seed, 2);
        for u in 0..12 {
            let class = match u % 4 {
                0 => NodeClass::DirectConnect,
                1 => NodeClass::Upnp,
                2 => NodeClass::Nat,
                _ => NodeClass::Firewall,
            };
            eng.schedule_at(
                SimTime::from_secs(3 + (u % 5) as u64),
                Event::Arrive(spec(u, class, 400 + 100 * u as u64, 400)),
            );
        }
        eng.run_until(SimTime::from_secs(600));
        eng.world().log.to_text()
    };
    let a = run(77);
    let b = run(77);
    let c = run(78);
    assert_eq!(a, b, "same seed must reproduce the log byte-for-byte");
    assert_ne!(a, c, "different seeds should diverge");
}

/// Departures detach peers cleanly: nobody keeps a dead parent, and the
/// departed peer's children recover.
#[test]
fn churn_repairs_orphans() {
    let mut eng = build_world(13, 1);
    // One strong peer leaves mid-run; others stay.
    eng.schedule_at(
        SimTime::from_secs(5),
        Event::Arrive(spec(0, NodeClass::DirectConnect, 4000, 120)),
    );
    for u in 1..8 {
        eng.schedule_at(
            SimTime::from_secs(10),
            Event::Arrive(spec(u, NodeClass::Nat, 300, 900)),
        );
    }
    eng.run_until(SimTime::from_secs(600));
    let world = eng.world();
    // The strong peer left on schedule.
    let s0 = world.sessions.iter().find(|s| s.user == UserId(0)).unwrap();
    assert!(s0.leave.is_some());
    // Every live peer's parents are live.
    for info in world.net.iter_alive() {
        if let Some(p) = world.peer(info.id) {
            for parent in p.parents().iter().flatten() {
                assert!(
                    world.net.is_alive(*parent),
                    "{:?} kept dead parent {:?}",
                    info.id,
                    parent
                );
            }
        }
    }
    // NAT peers survived the churn and kept streaming.
    let streaming = world
        .net
        .iter_alive()
        .filter(|n| n.class.is_user())
        .filter(|n| {
            world
                .peer(n.id)
                .map(|p| p.media_ready().is_some())
                .unwrap_or(false)
        })
        .count();
    assert!(
        streaming >= 5,
        "only {streaming} peers streaming after churn"
    );
}

/// With zero servers and only NAT peers, joins must fail and retries
/// appear — the paper's flash-crowd pathology in miniature.
#[test]
fn unreachable_overlay_forces_retries() {
    let mut eng = build_world(14, 0);
    for u in 0..6 {
        let mut s = spec(u, NodeClass::Nat, 300, 400);
        s.patience = SimTime::from_secs(20);
        eng.schedule_at(SimTime::from_secs(5), Event::Arrive(s));
    }
    eng.run_until(SimTime::from_secs(400));
    let world = eng.world();
    // Nobody can reach media-ready (nobody has content).
    assert!(world
        .sessions
        .iter()
        .filter(|s| s.class.is_user())
        .all(|s| s.ready.is_none()));
    // Users left impatiently and retried.
    assert!(world.stats.impatient_departs > 0);
    assert!(
        world.sessions.iter().any(|s| s.retry_index > 0),
        "no retry sessions recorded"
    );
}

/// Topology snapshots accumulate and converge towards public parents.
#[test]
fn snapshots_show_public_parent_dominance() {
    let mut eng = build_world(15, 1);
    for u in 0..20 {
        let class = if u < 6 {
            NodeClass::DirectConnect
        } else {
            NodeClass::Nat
        };
        let kbps = if u < 6 { 3000 } else { 300 };
        eng.schedule_at(
            SimTime::from_secs(5 + u as u64 / 4),
            Event::Arrive(spec(u, class, kbps, 1800)),
        );
    }
    eng.run_until(SimTime::from_secs(1200));
    let world = eng.world();
    assert!(world.snapshots.len() >= 15);
    let last = world.snapshots.last().unwrap();
    assert!(last.streaming >= 15, "streaming {}", last.streaming);
    // Public + server parents dominate private ones by the end.
    assert!(
        last.edges_from_public + last.edges_from_server > last.edges_from_private,
        "private parents dominate: {last:?}"
    );
    // NAT↔NAT partnership links are rare.
    assert!(
        last.natfw_link_share() < 0.25,
        "random links too common: {}",
        last.natfw_link_share()
    );
}
