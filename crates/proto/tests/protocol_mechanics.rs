//! Fine-grained protocol-mechanics tests on crafted micro-worlds:
//! parent qualification, subscription bookkeeping, adaptation triggers,
//! failure injection, and the join state machine.

use cs_logging::UserId;
use cs_net::{Bandwidth, ConnectivityPolicy, LatencyModel, Network, NodeClass, NodeId};
use cs_proto::{CsWorld, Event, Params, UserSpec};
use cs_sim::{Engine, SimTime};

fn params() -> Params {
    Params::default()
}

fn world_with(params: Params, servers: usize, seed: u64) -> Engine<CsWorld> {
    let net = Network::new(ConnectivityPolicy::strict(), LatencyModel::default(), seed);
    let world = CsWorld::new(params, net, servers, Bandwidth::mbps(50), seed);
    let mut eng = Engine::new(world);
    for (t, e) in eng.world().initial_events() {
        eng.schedule_at(t, e);
    }
    eng
}

fn spec(user: u32, class: NodeClass, kbps: u64, leave_s: u64) -> UserSpec {
    UserSpec {
        user: UserId(user),
        class,
        upload: Bandwidth::kbps(kbps),
        leave_at: SimTime::from_secs(leave_s),
        patience: SimTime::from_secs(120),
        retries_left: 0,
        retry_index: 0,
    }
}

/// A single joiner must subscribe all K sub-streams to the server and
/// start within the §IV.A position (m − T_p).
#[test]
fn join_subscribes_all_substreams_near_live_edge() {
    let mut eng = world_with(params(), 1, 1);
    eng.schedule_at(
        SimTime::from_secs(60),
        Event::Arrive(spec(0, NodeClass::Nat, 300, 10_000)),
    );
    eng.run_until(SimTime::from_secs(90));
    let w = eng.world();
    let id = NodeId(2); // source=0, server=1
    let peer = w.peer(id).expect("alive");
    let k = w.params.substreams;
    for j in 0..k {
        assert_eq!(
            peer.parents()[j as usize],
            Some(w.servers[0]),
            "substream {j} not on the server"
        );
    }
    let buf = peer.buffer().expect("buffer chosen");
    // Start position within [edge − T_p − slack, edge].
    let edge_at_join = w.params.live_edge(SimTime::from_secs(61)).unwrap();
    let lo = edge_at_join.saturating_sub(w.params.tp_blocks + 40);
    assert!(
        buf.start_seq() >= lo && buf.start_seq() <= edge_at_join,
        "start {} not within [{}, {}]",
        buf.start_seq(),
        lo,
        edge_at_join
    );
    // And the server's child list mirrors the subscriptions.
    let server = w.peer(w.servers[0]).unwrap();
    assert_eq!(server.out_degree(), k as usize);
}

/// The cool-down confines quality adaptations: a starving child switches
/// at most once per `T_a`.
#[test]
fn cooldown_limits_adaptation_frequency() {
    let mut p = params();
    p.ta = SimTime::from_secs(30);
    // Tiny server so everything starves and adaptation pressure is
    // constant.
    let net = Network::new(ConnectivityPolicy::strict(), LatencyModel::default(), 2);
    let world = CsWorld::new(p, net, 1, Bandwidth::kbps(900), 2);
    let mut eng = Engine::new(world);
    for (t, e) in eng.world().initial_events() {
        eng.schedule_at(t, e);
    }
    for u in 0..6 {
        eng.schedule_at(
            SimTime::from_secs(30),
            Event::Arrive(spec(u, NodeClass::Nat, 200, 10_000)),
        );
    }
    eng.run_until(SimTime::from_secs(330));
    let w = eng.world();
    // 300 s of pressure with T_a = 30 s → at most ~10 adaptations each,
    // plus the initial one.
    for rec in w.sessions.iter().filter(|r| r.class.is_user()) {
        assert!(
            rec.adaptations <= 11,
            "user {:?} adapted {} times in 300s despite T_a=30s",
            rec.user,
            rec.adaptations
        );
    }
}

/// Crashing a server orphans its children, who repair onto the other
/// server without leaving.
#[test]
fn server_crash_repairs_via_adaptation() {
    let mut eng = world_with(params(), 2, 3);
    for u in 0..10 {
        eng.schedule_at(
            SimTime::from_secs(30),
            Event::Arrive(spec(u, NodeClass::Nat, 300, 10_000)),
        );
    }
    eng.run_until(SimTime::from_secs(120));
    let crashed = eng.world().servers[0];
    assert!(eng.world().net.is_alive(crashed));
    eng.schedule_at(SimTime::from_secs(121), Event::CrashServer(0));
    eng.run_until(SimTime::from_secs(240));
    let w = eng.world();
    assert!(!w.net.is_alive(crashed), "server did not crash");
    // All peers still alive and streaming from live parents.
    let mut streaming = 0;
    for info in w.net.iter_alive().filter(|n| n.class.is_user()) {
        let peer = w.peer(info.id).unwrap();
        for parent in peer.parents().iter().flatten() {
            assert!(w.net.is_alive(*parent), "dead parent kept after crash");
            assert_ne!(*parent, crashed);
        }
        if peer.parents().iter().any(Option::is_some) {
            streaming += 1;
        }
    }
    assert_eq!(streaming, 10, "peers lost service permanently");
}

/// Scheduled user departures must not tear down infrastructure, even if
/// a stray Depart event targets it.
#[test]
fn infrastructure_ignores_depart_events() {
    let mut eng = world_with(params(), 1, 4);
    let server = eng.world().servers[0];
    let source = eng.world().source;
    eng.schedule_at(SimTime::from_secs(10), Event::Depart(server));
    eng.schedule_at(SimTime::from_secs(10), Event::Depart(source));
    eng.run_until(SimTime::from_secs(20));
    assert!(eng.world().net.is_alive(server));
    assert!(eng.world().net.is_alive(source));
}

/// Retries consume the budget: a user with `retries_left = 1` appears at
/// most twice.
#[test]
fn retry_budget_is_finite() {
    // No servers → joins can never complete; patience forces retries.
    let mut eng = world_with(params(), 0, 5);
    let mut s = spec(0, NodeClass::Nat, 300, 4_000);
    s.patience = SimTime::from_secs(15);
    s.retries_left = 1;
    eng.schedule_at(SimTime::from_secs(5), Event::Arrive(s));
    eng.run_until(SimTime::from_secs(600));
    let w = eng.world();
    let sessions = w
        .sessions
        .iter()
        .filter(|r| r.class.is_user() && r.user == UserId(0))
        .count();
    assert_eq!(sessions, 2, "retry budget not respected");
    assert_eq!(w.stats.impatient_departs, 2);
}

/// The BM a server advertises tracks the live edge with the configured
/// lag, for every sub-stream.
#[test]
fn server_buffer_map_tracks_live_edge() {
    let mut eng = world_with(params(), 1, 6);
    eng.schedule_at(
        SimTime::from_secs(100),
        Event::Arrive(spec(0, NodeClass::Nat, 300, 10_000)),
    );
    eng.run_until(SimTime::from_secs(140));
    let w = eng.world();
    let peer = w.peer(NodeId(2)).expect("joined");
    let view = peer.partners().get(&w.servers[0]).expect("server partner");
    let k = w.params.substreams;
    let edge = w
        .params
        .live_edge(SimTime::from_secs(140).saturating_sub(w.params.server_lag))
        .unwrap();
    for j in 0..k as usize {
        let adv = view.latest[j].expect("server advertises all substreams");
        assert!(adv <= edge, "substream {j} ahead of the lagged edge");
        // Within one BM interval of stream progress behind.
        let staleness = (w.params.bm_interval.as_secs_f64() + 1.0) * w.params.blocks_per_sec();
        assert!(
            (edge - adv) as f64 <= staleness + k as f64,
            "substream {j} too stale: adv {adv} vs edge {edge}"
        );
    }
}

/// Log-reported partner direction: the initiating side reports the
/// partnership as outgoing, the accepting side as incoming.
#[test]
fn partnership_direction_bookkeeping() {
    let mut eng = world_with(params(), 1, 7);
    eng.schedule_at(
        SimTime::from_secs(30),
        Event::Arrive(spec(0, NodeClass::DirectConnect, 3000, 10_000)),
    );
    // Second joiner may partner with the first (public) peer.
    eng.schedule_at(
        SimTime::from_secs(60),
        Event::Arrive(spec(1, NodeClass::Nat, 300, 10_000)),
    );
    eng.run_until(SimTime::from_secs(120));
    let w = eng.world();
    let first = w.peer(NodeId(2)).unwrap();
    let second = w.peer(NodeId(3)).unwrap();
    if let Some(view) = second.partners().get(&NodeId(2)) {
        assert!(view.outgoing, "initiator must mark partnership outgoing");
        let back = first.partners().get(&NodeId(3)).expect("symmetric");
        assert!(!back.outgoing, "acceptor must mark partnership incoming");
    } else {
        // The NAT peer must at least hold the server partnership.
        assert!(second.partners().contains_key(&w.servers[0]));
    }
}

/// Give-up departures release every resource: after a mass give-up, no
/// parent anywhere references a departed node.
#[test]
fn giveup_cleanup_is_complete() {
    let mut p = params();
    p.giveup_ticks = 6;
    // Server far too small for the audience → give-ups guaranteed.
    let net = Network::new(ConnectivityPolicy::strict(), LatencyModel::default(), 8);
    let world = CsWorld::new(p, net, 1, Bandwidth::kbps(1200), 8);
    let mut eng = Engine::new(world);
    for (t, e) in eng.world().initial_events() {
        eng.schedule_at(t, e);
    }
    for u in 0..12 {
        let mut s = spec(u, NodeClass::Nat, 200, 10_000);
        s.retries_left = 2;
        eng.schedule_at(SimTime::from_secs(30), Event::Arrive(s));
    }
    eng.run_until(SimTime::from_secs(900));
    let w = eng.world();
    assert!(
        w.stats.giveup_departs > 0,
        "no give-ups in a starved overlay"
    );
    for info in w.net.iter_alive() {
        if let Some(peer) = w.peer(info.id) {
            for q in peer.partners().keys() {
                assert!(w.net.is_alive(*q), "dangling partner {q:?}");
            }
            for (c, _) in peer.children() {
                // Children lists may lag one push round; they must never
                // reference a *recycled* slot.
                if !w.net.is_alive(*c) {
                    assert!(w.peer(*c).is_none(), "child slot not cleared");
                }
            }
        }
    }
}
