//! Property tests on the protocol data structures.

use cs_net::NodeId;
use cs_proto::{BufferMap, MCache, McEntry, Params, ReplacePolicy, ShardMap, StreamBuffer};
use cs_sim::rng::Xoshiro256PlusPlus;
use cs_sim::SimTime;
use proptest::prelude::*;

/// Operations applicable to a stream buffer.
#[derive(Clone, Debug)]
enum BufOp {
    Advance(u32, u64),
    SkipTo(u32, u64),
}

fn arb_ops(k: u32) -> impl Strategy<Value = Vec<BufOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0..k, 1u64..50).prop_map(|(i, n)| BufOp::Advance(i, n)),
            (0..k, 0u64..2000).prop_map(|(i, b)| BufOp::SkipTo(i, b)),
        ],
        0..40,
    )
}

proptest! {
    /// Whatever the op sequence, per-sub-stream alignment, contiguity and
    /// hole bookkeeping stay coherent.
    #[test]
    fn stream_buffer_invariants(
        k in 1u32..8,
        start in 0u64..500,
        ops in arb_ops(8),
    ) {
        let mut buf = StreamBuffer::new(k, start);
        for op in ops {
            match op {
                BufOp::Advance(i, n) if i < k => { buf.advance(i, n); },
                BufOp::SkipTo(i, b) if i < k => { buf.skip_to(i, b); },
                _ => {}
            }
        }
        for i in 0..k {
            if let Some(h) = buf.latest(i) {
                // Alignment: the newest seq belongs to its sub-stream.
                prop_assert_eq!(h % k as u64, i as u64);
                prop_assert!(h >= buf.first_wanted(i));
                // next_missing is exactly one block further.
                prop_assert_eq!(buf.next_missing(i), h + k as u64);
            } else {
                prop_assert_eq!(buf.next_missing(i), buf.first_wanted(i));
            }
        }
        // Contiguous edge never exceeds the max latest and never precedes
        // start − 1.
        if let Some(edge) = buf.contiguous_edge() {
            prop_assert!(edge >= start);
            prop_assert!(edge <= buf.max_latest().unwrap());
            prop_assert_eq!(buf.contiguous_len(), edge - start + 1);
            // Every block up to the edge is either present or a recorded
            // hole — sample a few points.
            for n in [start, start + (edge - start) / 2, edge] {
                let in_hole = buf
                    .holes()
                    .iter()
                    .any(|&(s, e)| n >= s && n <= e && (n - s) % k as u64 == 0);
                prop_assert!(buf.has_block(n) || in_hole, "block {n} unaccounted");
            }
        } else {
            prop_assert_eq!(buf.contiguous_len(), 0);
        }
        // Blocks before start are never present.
        if start > 0 {
            prop_assert!(!buf.has_block(start - 1));
        }
    }

    /// The BM wire codec round-trips any latest/subscription combination.
    #[test]
    fn buffer_map_codec_round_trips(
        k in 1u32..16,
        latests in proptest::collection::vec(proptest::option::of(0u64..u64::MAX / 2), 1..16),
        bits in any::<u16>(),
    ) {
        let k = k.min(latests.len() as u32);
        let latest: Vec<Option<u64>> = latests[..k as usize].to_vec();
        let subscribed: Vec<bool> = (0..k).map(|i| bits & (1 << i) != 0).collect();
        let bm = BufferMap { latest, subscribed };
        let decoded = BufferMap::decode(k, &bm.encode()).expect("decodes");
        prop_assert_eq!(decoded, bm);
    }

    /// mCache never exceeds capacity and never holds duplicates,
    /// whatever the insert/remove interleaving or policy.
    #[test]
    fn mcache_capacity_and_uniqueness(
        cap in 0usize..12,
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u32..30, 0u64..1000, any::<bool>()), 0..80),
        biased in any::<bool>(),
    ) {
        let policy = if biased {
            ReplacePolicy::StabilityBiased
        } else {
            ReplacePolicy::Random
        };
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let mut cache = MCache::new(cap);
        for (id, joined, remove) in ops {
            if remove {
                cache.remove(NodeId(id));
            } else {
                cache.insert(
                    McEntry {
                        id: NodeId(id),
                        joined_at: SimTime::from_secs(joined),
                        added_at: SimTime::ZERO,
                    },
                    policy,
                    &mut rng,
                );
            }
            prop_assert!(cache.len() <= cap);
            let mut ids: Vec<u32> = cache.iter().map(|e| e.id.0).collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "duplicate entries");
        }
    }

    /// Parameter validation never panics and accepts the default under
    /// small perturbations of the timing knobs.
    #[test]
    fn params_validation_is_total(
        substreams in 0u32..20,
        block_bytes in 0u32..100_000,
        tp in 0u64..10_000,
        delay in 0u64..10_000,
        giveup in -1.0f64..2.0,
    ) {
        let p = Params {
            substreams,
            block_bytes,
            tp_blocks: tp,
            playback_delay_blocks: delay,
            giveup_loss: giveup,
            ..Params::default()
        };
        let _ = p.validate(); // must not panic
    }

    /// The NodeId→shard map is stable (same answer every call and from
    /// any instance), total (defined and in-range for every id), and
    /// balanced: over any contiguous id range the per-shard populations
    /// differ by at most one.
    #[test]
    fn shard_map_is_stable_total_balanced(
        shards in 1usize..16,
        start in 0u32..1_000_000,
        len in 1u32..4_096,
    ) {
        let map = ShardMap::new(shards);
        prop_assert_eq!(map.len(), shards);
        let mut counts = vec![0u64; shards];
        for id in start..start.saturating_add(len) {
            let s = map.shard_of(NodeId(id));
            prop_assert!(s < shards, "total: shard {s} out of range for id {id}");
            prop_assert_eq!(s, map.shard_of(NodeId(id)), "stable across calls");
            prop_assert_eq!(
                s,
                ShardMap::new(shards).shard_of(NodeId(id)),
                "stable across instances"
            );
            counts[s] += 1;
        }
        let min = counts.iter().min().copied().unwrap_or(0);
        let max = counts.iter().max().copied().unwrap_or(0);
        prop_assert!(
            max - min <= 1,
            "balanced within one over a contiguous range: {counts:?}"
        );
    }
}
