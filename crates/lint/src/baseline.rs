//! The committed finding baseline (`lint-baseline.json`).
//!
//! New rule families land deny-by-default without a big-bang cleanup:
//! known findings are recorded in a committed baseline and suppressed,
//! anything *not* in the baseline fails `--deny`. Entries are keyed by
//! `(file, rule, message)` with a count, so the baseline is stable under
//! unrelated line churn but still catches a second occurrence of a
//! recorded smell. Stale entries (recorded but no longer firing) are
//! reported so the file shrinks monotonically; CI diffs a regenerated
//! baseline against the committed one to block silent growth.
//!
//! The format is a small fixed-schema JSON document, parsed by a
//! hand-rolled reader below — the lint crate stays dependency-free.

use crate::rules::{Finding, RuleId};

/// Schema tag written into and required from every baseline file.
pub const SCHEMA: &str = "cs-lint-baseline/1";

/// One suppressed finding class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Workspace-relative path.
    pub file: String,
    /// Short rule id (`R1`).
    pub rule: String,
    /// Exact finding message.
    pub message: String,
    /// How many identical findings this entry suppresses.
    pub count: u32,
}

/// A parsed baseline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Suppressed finding classes, sorted by `(file, rule, message)`.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Build a baseline that records exactly `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: Vec<Entry> = Vec::new();
        for f in findings {
            let key = (f.file.clone(), f.rule.id().to_string(), f.message.clone());
            match entries
                .iter_mut()
                .find(|e| (e.file == key.0) && (e.rule == key.1) && (e.message == key.2))
            {
                Some(e) => e.count += 1,
                None => entries.push(Entry {
                    file: key.0,
                    rule: key.1,
                    message: key.2,
                    count: 1,
                }),
            }
        }
        entries.sort_by(|a, b| {
            (a.file.as_str(), a.rule.as_str(), a.message.as_str()).cmp(&(
                b.file.as_str(),
                b.rule.as_str(),
                b.message.as_str(),
            ))
        });
        Baseline { entries }
    }

    /// Split `findings` into (not-suppressed, stale-entry warnings).
    ///
    /// Each entry suppresses up to `count` findings with identical
    /// `(file, rule, message)`. Entries that match nothing (or fewer
    /// findings than recorded) produce a warning naming the surplus, so
    /// fixed findings get removed from the committed file.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<String>) {
        let mut budget: Vec<(usize, u32)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.count))
            .collect();
        let mut kept: Vec<Finding> = Vec::new();
        for f in findings {
            let slot = budget.iter_mut().find(|(i, left)| {
                *left > 0 && {
                    let e = &self.entries[*i];
                    e.file == f.file && e.rule == f.rule.id() && e.message == f.message
                }
            });
            match slot {
                Some((_, left)) => *left -= 1,
                None => kept.push(f),
            }
        }
        let mut warnings: Vec<String> = Vec::new();
        for (i, left) in budget {
            if left > 0 {
                let e = &self.entries[i];
                warnings.push(format!(
                    "baseline entry no longer fires ({} of {} stale): {} {} \"{}\" — remove it",
                    left, e.count, e.file, e.rule, e.message
                ));
            }
        }
        (kept, warnings)
    }

    /// Serialize (stable order, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\n  \"schema\": \"{SCHEMA}\",\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"rule\": \"{}\", \"count\": {}, \"message\": \"{}\"}}",
                crate::json_escape(&e.file),
                crate::json_escape(&e.rule),
                e.count,
                crate::json_escape(&e.message)
            ));
        }
        if !self.entries.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parse a baseline document, validating the schema tag and that
    /// every entry names a known rule.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let v = Json::parse(src)?;
        let obj = v.as_object().ok_or("baseline root must be an object")?;
        match get(obj, "schema").and_then(Json::as_str) {
            Some(s) if s == SCHEMA => {}
            Some(s) => return Err(format!("unsupported baseline schema `{s}` (want {SCHEMA})")),
            None => return Err("baseline is missing the \"schema\" tag".to_string()),
        }
        let raw_entries = get(obj, "entries")
            .and_then(Json::as_array)
            .ok_or("baseline is missing the \"entries\" array")?;
        let mut entries = Vec::new();
        for (i, ev) in raw_entries.iter().enumerate() {
            let eo = ev
                .as_object()
                .ok_or_else(|| format!("entries[{i}] is not an object"))?;
            let field = |k: &str| -> Result<String, String> {
                get(eo, k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("entries[{i}] is missing string field \"{k}\""))
            };
            let rule = field("rule")?;
            if RuleId::lookup(&rule).is_none() {
                return Err(format!("entries[{i}] names unknown rule `{rule}`"));
            }
            let count = match get(eo, "count") {
                None => 1,
                Some(Json::Int(n)) if *n >= 1 => u32::try_from(*n).unwrap_or(u32::MAX),
                Some(_) => return Err(format!("entries[{i}].count must be a positive integer")),
            };
            entries.push(Entry {
                file: field("file")?,
                rule,
                message: field("message")?,
                count,
            });
        }
        Ok(Baseline { entries })
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A minimal JSON value — just enough for the baseline schema.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (baselines have no floats).
    Int(i64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object as an ordered key/value list.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, String> {
        let b: Vec<char> = src.chars().collect();
        let mut p = Parser { b, i: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at offset {}", p.i));
        }
        Ok(v)
    }

    /// As object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// As array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser {
    b: Vec<char>,
    i: usize,
}

impl Parser {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.eat(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.lit("true", Json::Bool(true)),
            Some('f') => self.lit("false", Json::Bool(false)),
            Some('n') => self.lit("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat('{')?;
        let mut out: Vec<(String, Json)> = Vec::new();
        self.ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Json::Object(out));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(':')?;
            self.ws();
            let v = self.value()?;
            out.push((k, v));
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some('}') => {
                    self.i += 1;
                    return Ok(Json::Object(out));
                }
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat('[')?;
        let mut out: Vec<Json> = Vec::new();
        self.ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Json::Array(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some(']') => {
                    self.i += 1;
                    return Ok(Json::Array(out));
                }
                other => return Err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(e) = self.peek() else {
                        return Err("dangling escape".to_string());
                    };
                    self.i += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'b' => out.push('\u{0008}'),
                        'f' => out.push('\u{000c}'),
                        'u' => {
                            let mut code: u32 = 0;
                            for _ in 0..4 {
                                let Some(h) = self.peek().and_then(|c| c.to_digit(16)) else {
                                    return Err("bad \\u escape".to_string());
                                };
                                code = code * 16 + h;
                                self.i += 1;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        let text: String = self.b[start..self.i].iter().collect();
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: RuleId, msg: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: msg.to_string(),
        }
    }

    #[test]
    fn round_trip_and_suppression() {
        let fs = vec![
            finding("a.rs", 3, RuleId::R1, "bad rng"),
            finding("a.rs", 9, RuleId::R1, "bad rng"),
            finding("b.rs", 1, RuleId::P1, "bad write"),
        ];
        let bl = Baseline::from_findings(&fs);
        assert_eq!(bl.entries.len(), 2);
        assert_eq!(bl.entries[0].count, 2);

        let parsed = Baseline::parse(&bl.to_json()).unwrap();
        assert_eq!(parsed, bl);

        // Exactly its recorded findings are suppressed; a new one passes.
        let mut more = fs.clone();
        more.push(finding("a.rs", 20, RuleId::R1, "bad rng"));
        let (kept, warn) = parsed.apply(more);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 20);
        assert!(warn.is_empty());
    }

    #[test]
    fn stale_entries_warn() {
        let bl = Baseline::from_findings(&[finding("a.rs", 1, RuleId::C3, "x")]);
        let (kept, warn) = bl.apply(Vec::new());
        assert!(kept.is_empty());
        assert_eq!(warn.len(), 1);
        assert!(warn[0].contains("no longer fires"));
    }

    #[test]
    fn parse_rejects_bad_schema_and_unknown_rules() {
        assert!(Baseline::parse("{\"schema\": \"nope/9\", \"entries\": []}").is_err());
        assert!(Baseline::parse(
            "{\"schema\": \"cs-lint-baseline/1\", \"entries\": [{\"file\": \"a\", \"rule\": \"Z9\", \"message\": \"m\"}]}"
        )
        .is_err());
        assert!(
            Baseline::parse("{\"schema\": \"cs-lint-baseline/1\", \"entries\": []}")
                .unwrap()
                .entries
                .is_empty()
        );
    }

    #[test]
    fn string_escapes_survive() {
        let bl = Baseline {
            entries: vec![Entry {
                file: "weird \"name\"\n.rs".to_string(),
                rule: "C1".to_string(),
                message: "tab\there \\ done \u{0007}".to_string(),
                count: 1,
            }],
        };
        assert_eq!(Baseline::parse(&bl.to_json()).unwrap(), bl);
    }
}
