//! # cs-lint — workspace-wide determinism & protocol-safety static analyzer
//!
//! The paper reproduction in this workspace is only trustworthy if a run
//! is a pure function of `(configuration, seed)`: golden trace hashes
//! catch nondeterminism *after* it ships, `cs-lint` stops it at the
//! source level. It walks every `.rs` file under `crates/` with a small
//! comment/string-aware lexer (no `syn`; the shim set is offline-only)
//! and enforces project-specific rules with per-crate scoping:
//!
//! | id | slug                | what it rejects |
//! |----|---------------------|-----------------|
//! | D1 | `det-collections`   | `HashMap`/`HashSet` in deterministic crates |
//! | D2 | `ambient-entropy`   | `Instant::now`, `SystemTime`, `thread_rng`, `rand::random` |
//! | C1 | `float-eq`          | float `==` / `!=` comparisons |
//! | C2 | `lossy-cast`        | lossy `as` numeric casts in `cs-proto`/`cs-model` |
//! | C3 | `panic-in-lib`      | `unwrap`/`expect`/`panic!`-family in library code |
//! | S1 | `forbid-unsafe`     | crate roots missing `#![forbid(unsafe_code)]` |
//! | M1 | `file-size`         | det-scope source files over 800 lines (god-object backstop) |
//!
//! Test code (`#[cfg(test)]` items, `tests/`, `benches/`, `examples/`,
//! and test-only modules named `tests.rs` / `*_tests.rs`) is exempt.
//! Individual sites are waived with an inline escape that *must* carry a
//! reason:
//!
//! ```text
//! let i = (n % k) as u32; // cs-lint: allow(lossy-cast) — n % k < k which is u32
//! ```
//!
//! See DESIGN.md §7 for the full rule rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use rules::{Config, FileCtx, Finding, RuleId};

/// Lint a single source string as if it were `rel_path` inside
/// `crate_name`. This is the entry point fixture tests use.
pub fn lint_source(
    crate_name: &str,
    rel_path: &str,
    is_crate_root: bool,
    src: &str,
) -> Vec<Finding> {
    lint_source_with(crate_name, rel_path, is_crate_root, src, &Config::default())
}

/// [`lint_source`] with an explicit [`Config`].
pub fn lint_source_with(
    crate_name: &str,
    rel_path: &str,
    is_crate_root: bool,
    src: &str,
    cfg: &Config,
) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let mask = lexer::test_mask(&lexed.tokens);
    let ctx = FileCtx {
        crate_name,
        rel_path,
        is_crate_root,
        line_count: u32::try_from(src.lines().count()).unwrap_or(u32::MAX),
    };
    rules::lint_tokens(&ctx, &lexed, &mask, cfg)
}

/// Walk `<root>/crates/**` and lint every non-test `.rs` file. Findings
/// come back sorted by `(file, line, rule)` so output is deterministic.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} has no crates/ directory; pass the workspace root",
            root.display()
        ));
    }
    let mut findings: Vec<Finding> = Vec::new();
    for crate_dir in sorted_dirs(&crates_dir)? {
        let crate_name = file_name_of(&crate_dir);
        let mut files: Vec<PathBuf> = Vec::new();
        collect_rs_files(&crate_dir, &mut files)?;
        files.sort();
        for f in files {
            if is_test_context(&f, &crate_dir) {
                continue;
            }
            let rel = rel_display(&f, root);
            let src = fs::read_to_string(&f)
                .map_err(|e| format!("failed to read {}: {e}", f.display()))?;
            let is_root = {
                let r = f
                    .strip_prefix(&crate_dir)
                    .map(|p| p.to_string_lossy().replace('\\', "/"))
                    .unwrap_or_default();
                r == "src/lib.rs" || r == "src/main.rs"
            };
            findings.extend(lint_source_with(&crate_name, &rel, is_root, &src, cfg));
        }
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// Subdirectories of `dir`, sorted by name for deterministic traversal.
fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    let mut out: Vec<PathBuf> = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
        let p = entry.path();
        if p.is_dir() {
            out.push(p);
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    for entry in rd {
        let entry = entry.map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
        let p = entry.path();
        if p.is_dir() {
            // `target/` never nests under crates/, but be safe.
            if file_name_of(&p) != "target" {
                collect_rs_files(&p, out)?;
            }
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
    Ok(())
}

/// Is this file test-context (exempt from all content rules)?
///
/// Covers the cargo test/bench/example roots plus test-only source
/// modules included via `#[cfg(test)] mod foo_tests;` — the token mask
/// only sees `#[cfg(test)]` *inside* a file, so whole-file test modules
/// are recognized by the `tests.rs` / `*_tests.rs` naming convention.
fn is_test_context(file: &Path, crate_dir: &Path) -> bool {
    let rel = file
        .strip_prefix(crate_dir)
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .unwrap_or_default();
    if rel.starts_with("tests/") || rel.starts_with("benches/") || rel.starts_with("examples/") {
        return true;
    }
    let stem = file
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    stem == "tests" || stem.ends_with("_tests")
}

fn file_name_of(p: &Path) -> String {
    p.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn rel_display(p: &Path, root: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Render findings as JSON (stable field order, findings pre-sorted).
pub fn to_json(findings: &[Finding]) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"slug\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule.id(),
            f.rule.slug(),
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_context_recognizes_test_module_filenames() {
        let crate_dir = Path::new("crates/proto");
        let t = |p: &str| is_test_context(&crate_dir.join(p), crate_dir);
        assert!(t("tests/world_smoke.rs"));
        assert!(t("src/partnership_tests.rs"));
        assert!(t("src/foo/tests.rs"));
        assert!(!t("src/partnership.rs"));
        assert!(!t("src/attests.rs"), "suffix match must respect `_`");
    }

    #[test]
    fn json_escaping() {
        let f = vec![Finding {
            file: "a\"b.rs".to_string(),
            line: 3,
            rule: RuleId::D1,
            message: "x\ny".to_string(),
        }];
        let j = to_json(&f);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("x\\ny"));
        assert!(j.contains("\"count\": 1"));
    }
}
