//! # cs-lint — workspace-wide determinism & protocol-safety static analyzer
//!
//! The paper reproduction in this workspace is only trustworthy if a run
//! is a pure function of `(configuration, seed)`: golden trace hashes
//! catch nondeterminism *after* it ships, `cs-lint` stops it at the
//! source level. It walks every `.rs` file under `crates/` with a small
//! comment/string-aware lexer (no `syn`; the shim set is offline-only)
//! and enforces project-specific rules with per-crate scoping:
//!
//! | id | slug                | what it rejects |
//! |----|---------------------|-----------------|
//! | D1 | `det-collections`   | `HashMap`/`HashSet` in deterministic crates |
//! | D2 | `ambient-entropy`   | `Instant::now`, `SystemTime`, `thread_rng`, `rand::random` |
//! | C1 | `float-eq`          | float `==` / `!=` comparisons |
//! | C2 | `lossy-cast`        | lossy `as` numeric casts in `cs-proto`/`cs-model` |
//! | C3 | `panic-in-lib`      | `unwrap`/`expect`/`panic!`-family in library code |
//! | S1 | `forbid-unsafe`     | crate roots missing `#![forbid(unsafe_code)]` |
//! | M1 | `file-size`         | det-scope source files over 800 lines (god-object backstop) |
//! | P1 | `shard-safety`      | cross-manager writes to another manager's `pub(super)` state |
//! | R1 | `rng-stream`        | RNGs constructed outside the named-stream API |
//! | X1 | `dispatch-exhaustive` | Event kinds / dispatch / KindClassify tables out of sync |
//!
//! D1–M1 are token-local. P1/R1/X1 are *structural and cross-file*: a
//! brace-tree item parser ([`parse`]) recovers modules, impls, fns, and
//! field visibility from the token stream, and a per-crate symbol table
//! ([`symbols`]) is built over the whole workspace before [`cross`]
//! checks run. Run `cs-lint --explain <RULE>` for any rule's rationale.
//!
//! Test code (`#[cfg(test)]` items, `tests/`, `benches/`, `examples/`,
//! and test-only modules named `tests.rs` / `*_tests.rs`) is exempt.
//! Individual sites are waived with an inline escape that *must* carry a
//! reason:
//!
//! ```text
//! let i = (n % k) as u32; // cs-lint: allow(lossy-cast) — n % k < k which is u32
//! ```
//!
//! See DESIGN.md §7 for the full rule rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cross;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod sarif;
pub mod symbols;

use std::fs;
use std::path::{Path, PathBuf};

pub use rules::{Config, FileCtx, Finding, RuleId};
pub use symbols::WorkspaceIndex;

/// Lint a single source string as if it were `rel_path` inside
/// `crate_name`. This is the entry point fixture tests use.
pub fn lint_source(
    crate_name: &str,
    rel_path: &str,
    is_crate_root: bool,
    src: &str,
) -> Vec<Finding> {
    lint_source_with(crate_name, rel_path, is_crate_root, src, &Config::default())
}

/// [`lint_source`] with an explicit [`Config`].
pub fn lint_source_with(
    crate_name: &str,
    rel_path: &str,
    is_crate_root: bool,
    src: &str,
    cfg: &Config,
) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let mask = lexer::test_mask(&lexed.tokens);
    let ctx = FileCtx {
        crate_name,
        rel_path,
        is_crate_root,
        line_count: u32::try_from(src.lines().count()).unwrap_or(u32::MAX),
    };
    rules::lint_tokens(&ctx, &lexed, &mask, cfg)
}

/// Walk `<root>/crates/**` and build a [`symbols::FileIndex`] for every
/// non-test `.rs` file (lexed, test-masked, item-parsed, sorted by path).
fn index_files(root: &Path) -> Result<Vec<symbols::FileIndex>, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} has no crates/ directory; pass the workspace root",
            root.display()
        ));
    }
    let mut out: Vec<symbols::FileIndex> = Vec::new();
    for crate_dir in sorted_dirs(&crates_dir)? {
        let crate_name = file_name_of(&crate_dir);
        let mut files: Vec<PathBuf> = Vec::new();
        collect_rs_files(&crate_dir, &mut files)?;
        files.sort();
        for f in files {
            if is_test_context(&f, &crate_dir) {
                continue;
            }
            let rel = rel_display(&f, root);
            let crate_rel = f
                .strip_prefix(&crate_dir)
                .map(|p| p.to_string_lossy().replace('\\', "/"))
                .unwrap_or_default();
            let src = fs::read_to_string(&f)
                .map_err(|e| format!("failed to read {}: {e}", f.display()))?;
            let is_root = crate_rel == "src/lib.rs" || crate_rel == "src/main.rs";
            out.push(symbols::FileIndex::build(
                &crate_name,
                &rel,
                &crate_rel,
                is_root,
                &src,
            ));
        }
    }
    Ok(out)
}

/// Build the workspace-wide symbol table (exposed for self-tests: the
/// workspace-clean suite asserts the index sees the facts the cross-file
/// rules depend on).
pub fn build_index(root: &Path, cfg: &Config) -> Result<WorkspaceIndex, String> {
    Ok(WorkspaceIndex::build(index_files(root)?, cfg))
}

/// Walk `<root>/crates/**` and lint every non-test `.rs` file: the
/// per-file token rules, then the cross-file P1/R1/X1 rules over the
/// workspace symbol table. Findings come back sorted by
/// `(file, line, rule)` so output is deterministic.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    let files = index_files(root)?;
    let mut findings: Vec<Finding> = Vec::new();
    for f in &files {
        let ctx = FileCtx {
            crate_name: &f.crate_name,
            rel_path: &f.rel_path,
            is_crate_root: f.is_crate_root,
            line_count: f.line_count,
        };
        findings.extend(rules::lint_tokens(&ctx, &f.lexed, &f.mask, cfg));
    }

    let index = WorkspaceIndex::build(files, cfg);
    let cross_raw = cross::check_workspace(&index, cfg);
    // Cross-file findings honor the same inline escapes as token rules;
    // E1/E2 meta-findings were already emitted by the per-file pass.
    for f in cross_raw {
        let escapes = index
            .crates
            .iter()
            .flat_map(|c| c.files.iter())
            .find(|fi| fi.rel_path == f.file)
            .map(|fi| fi.lexed.escapes.as_slice())
            .unwrap_or(&[]);
        findings.extend(rules::filter_escapes(vec![f], escapes));
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// Subdirectories of `dir`, sorted by name for deterministic traversal.
fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    let mut out: Vec<PathBuf> = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
        let p = entry.path();
        if p.is_dir() {
            out.push(p);
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    for entry in rd {
        let entry = entry.map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
        let p = entry.path();
        if p.is_dir() {
            // `target/` never nests under crates/, but be safe.
            if file_name_of(&p) != "target" {
                collect_rs_files(&p, out)?;
            }
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
    Ok(())
}

/// Is this file test-context (exempt from all content rules)?
///
/// Covers the cargo test/bench/example roots plus test-only source
/// modules included via `#[cfg(test)] mod foo_tests;` — the token mask
/// only sees `#[cfg(test)]` *inside* a file, so whole-file test modules
/// are recognized by the `tests.rs` / `*_tests.rs` naming convention.
fn is_test_context(file: &Path, crate_dir: &Path) -> bool {
    let rel = file
        .strip_prefix(crate_dir)
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .unwrap_or_default();
    if rel.starts_with("tests/") || rel.starts_with("benches/") || rel.starts_with("examples/") {
        return true;
    }
    let stem = file
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    stem == "tests" || stem.ends_with("_tests")
}

fn file_name_of(p: &Path) -> String {
    p.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn rel_display(p: &Path, root: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Render findings as JSON (stable field order, findings pre-sorted).
pub fn to_json(findings: &[Finding]) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"slug\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule.id(),
            f.rule.slug(),
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    s
}

/// The `--list-rules` table. Derived from the rule-metadata table in
/// `rules.rs`, so it cannot drift from the rule set.
pub fn list_rules_text() -> String {
    let mut s = String::from("id  slug                    escapable  scope\n");
    for r in RuleId::ALL {
        s.push_str(&format!(
            "{:<3} {:<23} {:<10} {}\n",
            r.id(),
            r.slug(),
            if r.is_escapable() { "yes" } else { "no" },
            r.scope()
        ));
    }
    s
}

/// The CLI `--help` text. The per-rule lines are derived from the same
/// rule-metadata table as `--list-rules` and `--explain`.
pub fn help_text() -> String {
    let mut s = String::from(
        "cs-lint [ROOT] [options] — workspace determinism & protocol-safety lints\n\
         \n\
         options:\n\
         \x20 --format text|json|sarif   output format (default text)\n\
         \x20 --deny                     exit nonzero when findings remain\n\
         \x20 --baseline PATH            suppress findings recorded in PATH\n\
         \x20                            (default: <ROOT>/lint-baseline.json if present)\n\
         \x20 --no-baseline              ignore any baseline file\n\
         \x20 --write-baseline PATH      record the current findings to PATH and exit\n\
         \x20 --list-rules               print the rule table\n\
         \x20 --explain RULE             print a rule's rationale (id or slug)\n\
         \n\
         rules (see DESIGN.md §7 and §11):\n",
    );
    for r in RuleId::ALL {
        s.push_str(&format!(
            "  {:<3} {:<23} {}\n",
            r.id(),
            r.slug(),
            r.summary()
        ));
    }
    s
}

/// The `--explain <RULE>` text for a rule id or slug.
pub fn explain_text(name: &str) -> Option<String> {
    let r = RuleId::lookup(name)?;
    Some(format!(
        "{} ({})\nscope: {}\nescapable: {}\n\n{}\n{}\n",
        r.id(),
        r.slug(),
        r.scope(),
        if r.is_escapable() {
            "yes — `// cs-lint: allow(<slug>) — <why safe>`"
        } else {
            "no"
        },
        r.summary(),
        r.explain()
    ))
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_context_recognizes_test_module_filenames() {
        let crate_dir = Path::new("crates/proto");
        let t = |p: &str| is_test_context(&crate_dir.join(p), crate_dir);
        assert!(t("tests/world_smoke.rs"));
        assert!(t("src/partnership_tests.rs"));
        assert!(t("src/foo/tests.rs"));
        assert!(!t("src/partnership.rs"));
        assert!(!t("src/attests.rs"), "suffix match must respect `_`");
    }

    #[test]
    fn json_escaping() {
        let f = vec![Finding {
            file: "a\"b.rs".to_string(),
            line: 3,
            rule: RuleId::D1,
            message: "x\ny".to_string(),
        }];
        let j = to_json(&f);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("x\\ny"));
        assert!(j.contains("\"count\": 1"));
    }
}
