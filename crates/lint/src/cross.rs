//! Cross-file rule families: P1 shard-safety, R1 RNG-stream discipline,
//! X1 dispatch exhaustiveness.
//!
//! These run over the [`WorkspaceIndex`] after the per-file pass. Raw
//! findings come back *unfiltered*; the driver in `lib.rs` applies each
//! file's allow-escapes so `// cs-lint: allow(shard-safety) — …` works
//! exactly like it does for token rules.

use crate::lexer::{Tok, TokKind};
use crate::rules::{Config, Finding, RuleId};
use crate::symbols::{EventAlphabet, FileIndex, KindArm, WorkspaceIndex};

/// Run all cross-file rules.
pub fn check_workspace(index: &WorkspaceIndex, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    check_shard_safety(index, &mut out);
    check_rng_streams(index, cfg, &mut out);
    check_dispatch(index, &mut out);
    out
}

// ---------------------------------------------------------------- P1 --

/// The top-level module owning a crate-relative source path:
/// `src/stream.rs` and `src/stream/…` → `stream`; roots → `""`.
fn file_module(crate_rel: &str) -> &str {
    let Some(rest) = crate_rel.strip_prefix("src/") else {
        return "";
    };
    match rest.split_once('/') {
        Some((m, _)) => m,
        None => rest.strip_suffix(".rs").unwrap_or(rest),
    }
}

/// P1 — a `pub(super)` field declared in `src/<m>/state.rs` may only be
/// *written* from module `<m>`. Reads elsewhere are fine; writes must go
/// through the owning manager's `pub(crate)` mutators.
fn check_shard_safety(index: &WorkspaceIndex, out: &mut Vec<Finding>) {
    for c in &index.crates {
        if c.owned_fields.is_empty() {
            continue;
        }
        for f in &c.files {
            let here = file_module(&f.crate_rel);
            // Fields whose owner is NOT this file's module. A field name
            // owned by several state modules only fires when none match.
            let foreign: Vec<&crate::symbols::OwnedField> = c
                .owned_fields
                .iter()
                .filter(|o| {
                    !c.owned_fields
                        .iter()
                        .any(|p| p.field == o.field && p.owner == here)
                })
                .collect();
            if foreign.is_empty() {
                continue;
            }
            let toks = &f.lexed.tokens;
            for i in 0..toks.len() {
                if f.masked(i) || !toks[i].is_punct(".") {
                    continue;
                }
                let Some(name_tok) = toks.get(i + 1) else {
                    continue;
                };
                if name_tok.kind != TokKind::Ident {
                    continue;
                }
                let Some(owned) = foreign.iter().find(|o| o.field == name_tok.text) else {
                    continue;
                };
                if let Some(line) = write_after(toks, i + 2) {
                    let module_desc = if here.is_empty() {
                        "the crate root".to_string()
                    } else {
                        format!("module `{here}`")
                    };
                    out.push(Finding {
                        file: f.rel_path.clone(),
                        line,
                        rule: RuleId::P1,
                        message: format!(
                            "{module_desc} writes `{}`-owned field `{}.{}` (declared {}:{}); \
                             mutate through the owning manager's pub(crate) API",
                            owned.owner,
                            owned.in_struct,
                            owned.field,
                            owned.decl_file,
                            owned.decl_line
                        ),
                    });
                }
            }
        }
    }
}

/// Is the token sequence starting at `ix` (just past `.field`) an
/// assignment? Handles direct `=`, compound `+=`-family (the lexer
/// splits those into `+` `=`), and an interposed `[index]` group.
/// Returns the line of the assignment operator.
fn write_after(toks: &[Tok], mut ix: usize) -> Option<u32> {
    // `.field[i] = …` — skip one balanced bracket group.
    if toks.get(ix).is_some_and(|t| t.is_punct("[")) {
        ix = skip_balanced(toks, ix)?;
    }
    let t = toks.get(ix)?;
    if t.is_punct("=") {
        return Some(t.line);
    }
    if matches!(
        t.text.as_str(),
        "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
    ) && t.kind == TokKind::Punct
        && toks.get(ix + 1).is_some_and(|n| n.is_punct("="))
    {
        return Some(t.line);
    }
    None
}

/// Index just past the group opened at `open_ix` (`(`/`[`/`{`), tracking
/// all three delimiter kinds together. `None` if unbalanced.
fn skip_balanced(toks: &[Tok], open_ix: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = open_ix;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i + 1);
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------- R1 --

/// R1 — det-scope RNGs must be constructed through
/// `Xoshiro256PlusPlus::stream(master, streams::<NAME>)`, with `<NAME>`
/// declared in the sanctioned stream module.
fn check_rng_streams(index: &WorkspaceIndex, cfg: &Config, out: &mut Vec<Finding>) {
    for c in &index.crates {
        if !cfg.det_crates.iter().any(|d| d == &c.name) {
            continue;
        }
        for f in &c.files {
            if f.rel_path == cfg.stream_module {
                continue;
            }
            let toks = &f.lexed.tokens;
            for i in 0..toks.len() {
                if f.masked(i) || toks[i].kind != TokKind::Ident {
                    continue;
                }
                let t = &toks[i];
                let prev_is = |p: &str| i >= 1 && toks[i - 1].is_punct(p);
                let next_is = |p: &str| toks.get(i + 1).is_some_and(|n| n.is_punct(p));

                let raw_ctor = match t.text.as_str() {
                    "new" => {
                        prev_is("::")
                            && i >= 2
                            && toks[i - 2].is_ident("Xoshiro256PlusPlus")
                            && next_is("(")
                    }
                    "seed_from_u64" | "from_entropy" => prev_is("::") && next_is("("),
                    "split_seed" => next_is("("),
                    _ => false,
                };
                if raw_ctor {
                    out.push(Finding {
                        file: f.rel_path.clone(),
                        line: t.line,
                        rule: RuleId::R1,
                        message: format!(
                            "`{}` constructs/seeds an RNG outside the named-stream API; use \
                             `Xoshiro256PlusPlus::stream(master_seed, streams::<NAME>)` with a \
                             stream id declared in {}",
                            t.text, cfg.stream_module
                        ),
                    });
                    continue;
                }

                if matches!(
                    t.text.as_str(),
                    "SmallRng" | "StdRng" | "OsRng" | "ThreadRng"
                ) {
                    out.push(Finding {
                        file: f.rel_path.clone(),
                        line: t.line,
                        rule: RuleId::R1,
                        message: format!(
                            "`{}` is not the workspace RNG; det-scope randomness flows through \
                             Xoshiro256PlusPlus named streams only",
                            t.text
                        ),
                    });
                    continue;
                }

                if t.text == "stream" && prev_is("::") && next_is("(") {
                    check_stream_call(index, cfg, f, i, out);
                }
            }
        }
    }
}

/// Validate one `::stream(…)` call: two args, second a `streams::<NAME>`
/// path with `<NAME>` declared in the stream module.
fn check_stream_call(
    index: &WorkspaceIndex,
    cfg: &Config,
    f: &FileIndex,
    stream_ix: usize,
    out: &mut Vec<Finding>,
) {
    let toks = &f.lexed.tokens;
    let open = stream_ix + 1;
    let Some(close) = skip_balanced(toks, open) else {
        return;
    };
    // Split the argument tokens (open+1 .. close-1) on depth-0 commas.
    let mut args: Vec<(usize, usize)> = Vec::new();
    let mut depth = 0i32;
    let mut start = open + 1;
    for (i, t) in toks.iter().enumerate().take(close - 1).skip(open + 1) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => {
                    args.push((start, i));
                    start = i + 1;
                }
                _ => {}
            }
        }
    }
    if start < close - 1 {
        args.push((start, close - 1));
    }
    let line = toks[stream_ix].line;
    let Some(&(a2s, a2e)) = args.get(1) else {
        return; // not the two-arg stream constructor — some other ::stream
    };
    // The stream id must *end* in `streams :: NAME` (leading path ok).
    let id_ok = a2e - a2s >= 3
        && toks[a2e - 3].is_ident("streams")
        && toks[a2e - 2].is_punct("::")
        && toks[a2e - 1].kind == TokKind::Ident;
    if !id_ok {
        let got: Vec<&str> = toks[a2s..a2e].iter().map(|t| t.text.as_str()).collect();
        out.push(Finding {
            file: f.rel_path.clone(),
            line,
            rule: RuleId::R1,
            message: format!(
                "stream id `{}` is not a named `streams::<NAME>` constant from {}; ad-hoc ids \
                 risk stream collisions",
                got.join(""),
                cfg.stream_module
            ),
        });
        return;
    }
    let name = toks[a2e - 1].text.as_str();
    if index.has_stream_module && !index.stream_consts.iter().any(|s| s == name) {
        out.push(Finding {
            file: f.rel_path.clone(),
            line,
            rule: RuleId::R1,
            message: format!(
                "stream id `streams::{name}` is not declared in {}'s `streams` module \
                 (known: {})",
                cfg.stream_module,
                index.stream_consts.join(", ")
            ),
        });
    }
}

// ---------------------------------------------------------------- X1 --

/// X1 — the Event enum, the `kind_class` dense table, the `World::handle`
/// dispatch match, and every kind-enumerating `KindClassify` impl must
/// agree in arity, indices, and names.
fn check_dispatch(index: &WorkspaceIndex, out: &mut Vec<Finding>) {
    for al in &index.alphabets {
        check_kind_table(al, out);
        check_dispatch_match(al, out);
        for cls in &index.classifiers {
            if cls.event_type != al.enum_name || cls.arms.is_empty() {
                continue;
            }
            // Skip the classifier co-located with (and equal to) the
            // canonical table only if it actually matches; mismatches are
            // real findings wherever the impl lives.
            check_classifier(al, cls, out);
        }
    }
}

fn check_kind_table(al: &EventAlphabet, out: &mut Vec<Finding>) {
    let push = |out: &mut Vec<Finding>, line: u32, message: String| {
        out.push(Finding {
            file: al.file.clone(),
            line,
            rule: RuleId::X1,
            message,
        });
    };

    for v in &al.variants {
        if !al.kind_table.iter().any(|a| &a.variant == v) {
            push(
                out,
                al.kind_fn_line,
                format!(
                    "`kind_class` has no arm for `{}::{v}`; every event kind needs a dense \
                     (index, name) entry",
                    al.enum_name
                ),
            );
        }
    }
    for a in &al.kind_table {
        if !al.variants.iter().any(|v| v == &a.variant) {
            push(
                out,
                a.line,
                format!(
                    "`kind_class` arm `{}::{}` matches no variant of `{}`",
                    al.enum_name, a.variant, al.enum_name
                ),
            );
        }
        match a.index {
            None => push(
                out,
                a.line,
                format!(
                    "`kind_class` arm `{}::{}` does not return a literal `(index, \"name\")` \
                     pair; telemetry's dense slot vectors need literal indices",
                    al.enum_name, a.variant
                ),
            ),
            Some(ix) => {
                if al
                    .kind_table
                    .iter()
                    .any(|b| b.line < a.line && b.index == Some(ix))
                {
                    push(
                        out,
                        a.line,
                        format!(
                            "`kind_class` index {ix} for `{}::{}` is already used; indices must \
                             be unique",
                            al.enum_name, a.variant
                        ),
                    );
                }
            }
        }
        match a.name.as_deref() {
            None | Some("") => {}
            Some(n) => {
                if al
                    .kind_table
                    .iter()
                    .any(|b| b.line < a.line && b.name.as_deref() == Some(n))
                {
                    push(
                        out,
                        a.line,
                        format!("`kind_class` name \"{n}\" is already used; names must be unique"),
                    );
                }
            }
        }
    }
    // Dense contiguity: the set of indices must be exactly 0..N-1.
    let n = al.variants.len();
    let mut have: Vec<u32> = al.kind_table.iter().filter_map(|a| a.index).collect();
    have.sort_unstable();
    have.dedup();
    let want: Vec<u32> = (0..u32::try_from(n).unwrap_or(u32::MAX)).collect();
    if !have.is_empty() && have != want && al.kind_table.len() == n {
        push(
            out,
            al.kind_fn_line,
            format!(
                "`kind_class` indices are not the dense range 0..{n}; cs-telemetry indexes \
                 per-kind slot vectors by them (got {have:?})"
            ),
        );
    }
}

fn check_dispatch_match(al: &EventAlphabet, out: &mut Vec<Finding>) {
    if al.dispatch_fn_line == 0 || al.dispatch_has_wildcard {
        return;
    }
    for v in &al.variants {
        if !al.dispatch_arms.iter().any(|a| &a.variant == v) {
            out.push(Finding {
                file: al.file.clone(),
                line: al.dispatch_fn_line,
                rule: RuleId::X1,
                message: format!(
                    "dispatch `handle` has no arm for `{}::{v}`; the event would be dropped \
                     on the floor",
                    al.enum_name
                ),
            });
        }
    }
    for a in &al.dispatch_arms {
        if !al.variants.iter().any(|v| v == &a.variant) {
            out.push(Finding {
                file: al.file.clone(),
                line: a.line,
                rule: RuleId::X1,
                message: format!(
                    "dispatch arm `{}::{}` matches no variant of `{}`",
                    al.enum_name, a.variant, al.enum_name
                ),
            });
        }
    }
}

fn check_classifier(
    al: &EventAlphabet,
    cls: &crate::symbols::ClassifierImpl,
    out: &mut Vec<Finding>,
) {
    let canon = |v: &str| -> Option<&KindArm> { al.kind_table.iter().find(|a| a.variant == v) };
    for v in &al.variants {
        if !cls.arms.iter().any(|a| &a.variant == v) {
            out.push(Finding {
                file: cls.file.clone(),
                line: cls.line,
                rule: RuleId::X1,
                message: format!(
                    "`impl KindClassify<{}> for {}` has no arm for `{}::{v}` ({} kinds exist; \
                     delegate to `kind_class` or keep the table complete)",
                    al.enum_name,
                    cls.for_type,
                    al.enum_name,
                    al.variants.len()
                ),
            });
        }
    }
    for a in &cls.arms {
        let Some(c) = canon(&a.variant) else {
            out.push(Finding {
                file: cls.file.clone(),
                line: a.line,
                rule: RuleId::X1,
                message: format!(
                    "`impl KindClassify<{}> for {}` arm `{}::{}` matches no variant of `{}`",
                    al.enum_name, cls.for_type, al.enum_name, a.variant, al.enum_name
                ),
            });
            continue;
        };
        if a.index.is_some() && c.index.is_some() && a.index != c.index {
            out.push(Finding {
                file: cls.file.clone(),
                line: a.line,
                rule: RuleId::X1,
                message: format!(
                    "`{}` classifies `{}::{}` as index {:?} but the canonical `kind_class` \
                     ({}) says {:?}",
                    cls.for_type, al.enum_name, a.variant, a.index, al.file, c.index
                ),
            });
        }
        if a.name.is_some() && c.name.is_some() && a.name != c.name {
            out.push(Finding {
                file: cls.file.clone(),
                line: a.line,
                rule: RuleId::X1,
                message: format!(
                    "`{}` names `{}::{}` {:?} but the canonical `kind_class` ({}) says {:?}",
                    cls.for_type,
                    al.enum_name,
                    a.variant,
                    a.name.as_deref().unwrap_or(""),
                    al.file,
                    c.name.as_deref().unwrap_or("")
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::FileIndex;

    fn ws(files: Vec<(&str, &str, &str)>) -> WorkspaceIndex {
        let built = files
            .into_iter()
            .map(|(krate, crate_rel, src)| {
                FileIndex::build(
                    krate,
                    &format!("crates/{krate}/{crate_rel}"),
                    crate_rel,
                    crate_rel == "src/lib.rs",
                    src,
                )
            })
            .collect();
        WorkspaceIndex::build(built, &Config::default())
    }

    fn slugs(out: &[Finding]) -> Vec<(&str, u32)> {
        out.iter().map(|f| (f.rule.id(), f.line)).collect()
    }

    #[test]
    fn p1_flags_cross_module_write_not_read_or_owner_write() {
        let index = ws(vec![
            (
                "proto",
                "src/stream/state.rs",
                "pub struct StreamState {\n    pub(super) next_play: u64,\n}\n",
            ),
            (
                "proto",
                "src/stream/mgr.rs",
                "fn tick(p: &mut Peer) {\n    p.stream.next_play += 1;\n}\n",
            ),
            (
                "proto",
                "src/world.rs",
                "fn bad(p: &mut Peer) {\n    let x = p.stream.next_play;\n    p.stream.next_play = x + 1;\n}\n",
            ),
        ]);
        let out = check_workspace(&index, &Config::default());
        assert_eq!(slugs(&out), vec![("P1", 3)]);
        assert!(out[0].message.contains("module `world`"));
        assert!(out[0].message.contains("`stream`-owned"));
    }

    #[test]
    fn p1_flags_compound_and_indexed_writes() {
        let index = ws(vec![
            (
                "proto",
                "src/stream/state.rs",
                "pub struct S {\n    pub(super) parents: Vec<u32>,\n    pub(super) lossy_ticks: u64,\n}\n",
            ),
            (
                "proto",
                "src/partnership.rs",
                "fn f(s: &mut S, i: usize) {\n    s.parents[i] = 0;\n    s.lossy_ticks += 1;\n    let n = s.parents.len();\n}\n",
            ),
        ]);
        let out = check_workspace(&index, &Config::default());
        assert_eq!(slugs(&out), vec![("P1", 2), ("P1", 3)]);
    }

    #[test]
    fn r1_flags_raw_ctor_adhoc_stream_and_unknown_stream() {
        let index = ws(vec![
            (
                "sim",
                "src/rng.rs",
                "pub mod streams {\n    pub const ARRIVALS: u64 = 1;\n}\n",
            ),
            (
                "proto",
                "src/a.rs",
                "fn f() {\n    let a = Xoshiro256PlusPlus::new(1);\n    let b = Xoshiro256PlusPlus::stream(seed, CHANNEL_STREAM);\n    let c = Xoshiro256PlusPlus::stream(seed, streams::NOPE);\n    let d = Xoshiro256PlusPlus::stream(seed, streams::ARRIVALS);\n}\n",
            ),
        ]);
        let out = check_workspace(&index, &Config::default());
        assert_eq!(slugs(&out), vec![("R1", 2), ("R1", 3), ("R1", 4)]);
        assert!(out[1].message.contains("CHANNEL_STREAM"));
        assert!(out[2].message.contains("NOPE"));
    }

    #[test]
    fn r1_ignores_non_det_crates_and_the_stream_module() {
        let index = ws(vec![
            (
                "sim",
                "src/rng.rs",
                "pub mod streams { pub const A: u64 = 1; }\nimpl X { fn stream(m: u64, s: u64) -> Self { Self::new(split_seed(m, s)) } }\n",
            ),
            ("cli", "src/run.rs", "fn f() { let r = Xoshiro256PlusPlus::new(1); }\n"),
        ]);
        let out = check_workspace(&index, &Config::default());
        assert!(out.is_empty(), "{out:?}");
    }

    const GOOD_WORLD: &str = r#"
pub enum Event { A(u32), B, C }
impl Event {
    pub fn kind_class(&self) -> (u8, &'static str) {
        match self {
            Event::A(_) => (0, "a"),
            Event::B => (1, "b"),
            Event::C => (2, "c"),
        }
    }
}
impl World for W {
    fn handle(&mut self, event: Event) {
        match event {
            Event::A(x) => self.a(x),
            Event::B => {}
            Event::C => self.c(),
        }
    }
}
"#;

    #[test]
    fn x1_clean_alphabet_has_no_findings() {
        let index = ws(vec![("proto", "src/world.rs", GOOD_WORLD)]);
        assert!(check_workspace(&index, &Config::default()).is_empty());
    }

    #[test]
    fn x1_flags_missing_dispatch_arm() {
        let src = GOOD_WORLD.replace("            Event::C => self.c(),\n", "");
        let index = ws(vec![("proto", "src/world.rs", &src)]);
        let out = check_workspace(&index, &Config::default());
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("no arm for `Event::C`"));
    }

    #[test]
    fn x1_flags_missing_kind_and_nondense_indices() {
        let src = GOOD_WORLD.replace("Event::C => (2, \"c\"),\n", "");
        let index = ws(vec![("proto", "src/world.rs", &src)]);
        let out = check_workspace(&index, &Config::default());
        assert!(out
            .iter()
            .any(|f| f.message.contains("`kind_class` has no arm for `Event::C`")));

        let src2 = GOOD_WORLD.replace("(2, \"c\")", "(7, \"c\")");
        let index2 = ws(vec![("proto", "src/world.rs", &src2)]);
        let out2 = check_workspace(&index2, &Config::default());
        assert!(
            out2.iter().any(|f| f.message.contains("dense range")),
            "{out2:?}"
        );
    }

    #[test]
    fn x1_checks_cross_crate_classifier_tables() {
        let telemetry = r#"
impl KindClassify<Event> for StaleKinds {
    fn class(e: &Event) -> (u8, &'static str) {
        match e {
            Event::A(_) => (0, "a"),
            Event::B => (1, "bee"),
        }
    }
}
"#;
        let index = ws(vec![
            ("proto", "src/world.rs", GOOD_WORLD),
            ("telemetry", "src/kinds.rs", telemetry),
        ]);
        let out = check_workspace(&index, &Config::default());
        assert!(
            out.iter()
                .any(|f| f.message.contains("no arm for `Event::C`")),
            "{out:?}"
        );
        assert!(out.iter().any(|f| f.message.contains("\"bee\"")), "{out:?}");
    }

    #[test]
    fn x1_wildcard_dispatch_skips_exhaustiveness() {
        let src = GOOD_WORLD.replace(
            "            Event::C => self.c(),\n",
            "            _ => {}\n",
        );
        let index = ws(vec![("proto", "src/world.rs", &src)]);
        assert!(check_workspace(&index, &Config::default()).is_empty());
    }
}
