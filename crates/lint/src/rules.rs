//! The cs-lint rule set.
//!
//! Every rule is a pure function over a [`FileCtx`] — the lexed token
//! stream of one file plus crate/path metadata — pushing [`Finding`]s.
//! Scoping (which crates a rule applies to) lives in [`Config`], and the
//! `#[cfg(test)]` exemption plus allow-escape filtering are applied
//! centrally in [`lint_tokens`].

use crate::lexer::{AllowEscape, Lexed, Tok, TokKind};

/// The single rule-metadata table.
///
/// Everything user-visible about a rule — its short id, escape slug,
/// scope line (shown by `--list-rules`), one-line summary (shown in
/// `--help`), and long-form rationale (shown by `--explain`) — is
/// declared *once* here; the enum, the accessor methods, and
/// [`RuleId::ALL`] are generated from the same invocation so CLI text
/// cannot drift from the rule set (the sync is also asserted by tests).
macro_rules! rule_table {
    ($( $variant:ident {
        id: $id:literal,
        slug: $slug:literal,
        escapable: $esc:literal,
        scope: $scope:literal,
        summary: $summary:literal,
        explain: $explain:literal $(,)?
    } ),+ $(,)?) => {
        /// Rule identifiers. `E1`/`E2` are meta-rules about the escape
        /// syntax itself (missing reason, unknown rule slug).
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
        pub enum RuleId {
            $( #[doc = $summary] $variant, )+
        }

        impl RuleId {
            /// Every rule, in severity-sort order.
            pub const ALL: &'static [RuleId] = &[ $( RuleId::$variant, )+ ];

            /// Short id (`D1`).
            pub fn id(self) -> &'static str {
                match self { $( RuleId::$variant => $id, )+ }
            }

            /// Human slug, also the rule name used inside an
            /// `allow(...)` escape.
            pub fn slug(self) -> &'static str {
                match self { $( RuleId::$variant => $slug, )+ }
            }

            /// May an inline allow-escape comment waive this rule?
            pub fn is_escapable(self) -> bool {
                match self { $( RuleId::$variant => $esc, )+ }
            }

            /// Where the rule applies (one line, for `--list-rules`).
            pub fn scope(self) -> &'static str {
                match self { $( RuleId::$variant => $scope, )+ }
            }

            /// One-line summary (for `--help` / `--list-rules`).
            pub fn summary(self) -> &'static str {
                match self { $( RuleId::$variant => $summary, )+ }
            }

            /// Long-form rationale (for `--explain`), mirroring DESIGN.md.
            pub fn explain(self) -> &'static str {
                match self { $( RuleId::$variant => $explain, )+ }
            }
        }
    };
}

rule_table! {
    D1 {
        id: "D1",
        slug: "det-collections",
        escapable: true,
        scope: "deterministic crates (proto, sim, core, net, workload, telemetry)",
        summary: "Nondeterministic hash collections in deterministic crates.",
        explain: "Golden trace hashes require every run to be a pure function of \
(configuration, seed). std's HashMap/HashSet iterate in randomized order (SipHash keys \
are seeded from the OS), so any iteration that feeds protocol decisions or metric \
output perturbs the trace. Use BTreeMap/BTreeSet, or cs-sim's DetMap/DetSet wrappers.",
    },
    D2 {
        id: "D2",
        slug: "ambient-entropy",
        escapable: true,
        scope: "all crates except crates/sim/src/rng.rs",
        summary: "Wall-clock time or ambient randomness.",
        explain: "Instant::now, SystemTime, thread_rng and rand::random read state the \
seed does not control, so two runs with identical configuration diverge. All time must \
come from SimTime and all randomness from the seeded workspace RNG; the only sanctioned \
entropy source is crates/sim/src/rng.rs.",
    },
    C1 {
        id: "C1",
        slug: "float-eq",
        escapable: true,
        scope: "all crates",
        summary: "Float `==` / `!=` comparison.",
        explain: "Exact float equality is brittle under re-association and optimization \
level, and the paper's rate/continuity metrics are all f64. Compare against an explicit \
tolerance, or restructure so the comparison is on integers (block counts, tick indices).",
    },
    C2 {
        id: "C2",
        slug: "lossy-cast",
        escapable: true,
        scope: "proto, model",
        summary: "Potentially lossy `as` numeric cast.",
        explain: "`as` silently truncates and wraps. In the protocol and analytical-model \
crates a lossy cast corrupts block indices or rates without any error path. Use \
From/TryFrom, or escape with the range argument written down next to the cast.",
    },
    C3 {
        id: "C3",
        slug: "panic-in-lib",
        escapable: true,
        scope: "library crates (all but cli, bench)",
        summary: "`unwrap`/`expect`/`panic!` in library code.",
        explain: "A panic aborts a whole simulation campaign at some seed found hours in. \
Library crates must return errors or defaults; unwrap/expect/panic!/unreachable!/todo! \
are only acceptable with an escape carrying a proof of unreachability.",
    },
    S1 {
        id: "S1",
        slug: "forbid-unsafe",
        escapable: true,
        scope: "every crate root (src/lib.rs, src/main.rs)",
        summary: "Crate root missing `#![forbid(unsafe_code)]`.",
        explain: "The workspace is pure safe Rust by policy — there is no FFI and no \
performance case that justifies unsafe in a discrete-event simulator at this scale. \
Forbidding it at every crate root makes the policy load-bearing rather than aspirational.",
    },
    M1 {
        id: "M1",
        slug: "file-size",
        escapable: true,
        scope: "deterministic crates, files > 800 lines",
        summary: "Deterministic-scope source file grown past the size limit.",
        explain: "The CsWorld god-object was deliberately split along the paper's manager \
seams (membership/partnership/stream; DESIGN.md §9). This backstop keeps det-scope files \
from silently regrowing past 800 lines; split along module seams or escape on line 1 \
with the reason the file is one unit.",
    },
    P1 {
        id: "P1",
        slug: "shard-safety",
        escapable: true,
        scope: "crates with src/<module>/state.rs manager state (e.g. proto)",
        summary: "Cross-manager write to another manager's `pub(super)` state field.",
        explain: "The manager decomposition gives each of partnership/stream/membership \
sole write-ownership of its pub(super) state fields; other modules read freely but must \
mutate through the owning manager's pub(crate) methods. A stray cross-manager field \
write reintroduces the shared-mutable-state coupling the split removed, and is exactly \
the hazard that breaks sharded (ROADMAP item 1) execution, where managers live on \
different shards. Reads are not findings; only write sites outside src/<owner>.rs and \
src/<owner>/** are.",
    },
    R1 {
        id: "R1",
        slug: "rng-stream",
        escapable: true,
        scope: "deterministic crates, outside crates/sim/src/rng.rs",
        summary: "RNG constructed outside the named-stream API.",
        explain: "Every random draw in det-scope must flow through \
Xoshiro256PlusPlus::stream(master_seed, streams::<NAME>) with the stream id declared in \
crates/sim/src/rng.rs's `streams` module (the gated FREERIDER stream is the exemplar: \
present in every run's stream table whether or not free-riders are enabled, so toggling \
the feature cannot shift any other stream). Raw ::new/seed_from_u64/split_seed calls or \
ad-hoc stream ids silently re-seed or collide streams, which desynchronizes golden \
traces in ways that only surface at scale.",
    },
    A1 {
        id: "A1",
        slug: "arena-access",
        escapable: true,
        scope: "deterministic crates, outside crates/proto/src/{world,arena}.rs",
        summary: "Raw indexing into the peer arena outside its accessors.",
        explain: "Per-peer state lives in a generational slab (crates/proto/src/arena.rs) \
behind CsWorld's accessor API (peer/peer_mut/two_mut/peers/…). Raw `peers[i]` or \
`arena.get(i)` access from manager code bypasses the generation check that catches \
stale handles after slot reuse, and couples callers to the slab layout the sharding \
work (ROADMAP item 1) will change. Route access through the world.rs accessors, or \
escape with the invariant that makes the raw access safe.",
    },
    A2 {
        id: "A2",
        slug: "shard-isolation",
        escapable: true,
        scope: "deterministic crates, outside the shard router seam (proto world/shard/arena, sim shard)",
        summary: "Raw shard-partition access outside the router seam.",
        explain: "Sharded execution partitions the peer arena into per-shard columns behind \
a deterministic NodeId→shard map (crates/proto/src/shard.rs). CsWorld is a thin router: \
manager code addresses peers by NodeId or handle and must never see partition boundaries. \
Raw `shards[i]` subscripts or `shard_pair_mut(..)` calls outside the seam \
(crates/proto/src/{world,shard,arena}.rs, crates/sim/src/shard.rs) couple callers to the \
partition layout and can cross shard ownership lines, which breaks the epoch-barrier \
driver's byte-identical-to-solo guarantee. Route access through the CsWorld accessors, \
or escape with the ownership invariant that makes the raw access safe.",
    },
    X1 {
        id: "X1",
        slug: "dispatch-exhaustive",
        escapable: true,
        scope: "files declaring `enum Event` + kind_class, and all KindClassify impls",
        summary: "Event kinds, dispatch table, and KindClassify impls out of sync.",
        explain: "Three artifacts must agree on the event alphabet: the Event enum, the \
kind_class dense-index table (cs-telemetry indexes per-kind slot vectors by it, so \
indices must be exactly 0..N-1, names unique), and the World::handle dispatch match. \
Any KindClassify impl that enumerates kinds itself (rather than delegating to \
kind_class) must also match, cross-crate. Appending a chaos-style event kind without \
wiring all three is a hard finding instead of a runtime surprise.",
    },
    E1 {
        id: "E1",
        slug: "escape-missing-reason",
        escapable: false,
        scope: "escape comments themselves",
        summary: "Allow-escape comment without a reason.",
        explain: "An escape is a reviewed exception; the reason is the review. \
`// cs-lint: allow(<rule>) — <why safe>` with no reason text is rejected so waivers \
stay auditable.",
    },
    E2 {
        id: "E2",
        slug: "escape-unknown-rule",
        escapable: false,
        scope: "escape comments themselves",
        summary: "Allow-escape comment naming an unknown rule.",
        explain: "An escape naming a slug that is not an escapable rule is a typo that \
would otherwise silently waive nothing; it is rejected so the escape either works or \
is removed.",
    },
}

impl RuleId {
    /// All escapable rules (meta-rules cannot be escaped).
    pub fn escapable() -> impl Iterator<Item = RuleId> {
        RuleId::ALL.iter().copied().filter(|r| r.is_escapable())
    }

    /// Look a rule up by short id (`P1`) or slug (`shard-safety`),
    /// case-insensitively on the id.
    pub fn lookup(name: &str) -> Option<RuleId> {
        RuleId::ALL
            .iter()
            .copied()
            .find(|r| r.id().eq_ignore_ascii_case(name) || r.slug() == name)
    }
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human-readable message.
    pub message: String,
}

/// Per-workspace rule scoping.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crate *directory names* (under `crates/`) whose behaviour must be a
    /// pure function of `(configuration, seed)`: D1 applies here.
    pub det_crates: Vec<String>,
    /// Crates whose arithmetic is audited for lossy casts (C2).
    pub cast_crates: Vec<String>,
    /// Crates exempt from C3 (binary / harness crates, not library code).
    pub panic_exempt_crates: Vec<String>,
    /// Files exempt from D2 (the one sanctioned entropy source).
    pub entropy_files: Vec<String>,
    /// M1: deterministic-scope source files may not exceed this many
    /// lines (the god-object backstop; see DESIGN.md §9).
    pub max_file_lines: u32,
    /// The named-stream RNG module: the one file allowed to construct
    /// RNGs directly, and whose `streams` module declares the stream-id
    /// constants R1 resolves against.
    pub stream_module: String,
    /// The peer-arena accessor seam: the only files allowed to index the
    /// arena's columns directly (A1).
    pub arena_files: Vec<String>,
    /// The shard router seam: the only files allowed raw partition
    /// access (`shards[i]`, `shard_pair_mut`) (A2).
    pub shard_files: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            // `telemetry` is deterministic by design (metric keys and
            // windowing must not perturb trace hashes); its one sanctioned
            // wall-clock user — the DispatchProfiler, whose output goes
            // only to profile.json — carries explicit allow(ambient-entropy)
            // escapes rather than a file-level exemption.
            det_crates: ["proto", "sim", "core", "net", "workload", "telemetry"]
                .map(String::from)
                .to_vec(),
            cast_crates: ["proto", "model"].map(String::from).to_vec(),
            panic_exempt_crates: ["cli", "bench"].map(String::from).to_vec(),
            entropy_files: vec!["crates/sim/src/rng.rs".to_string()],
            max_file_lines: 800,
            stream_module: "crates/sim/src/rng.rs".to_string(),
            arena_files: [
                "crates/proto/src/world.rs",
                "crates/proto/src/arena.rs",
                "crates/proto/src/shard.rs",
            ]
            .map(String::from)
            .to_vec(),
            shard_files: [
                "crates/proto/src/world.rs",
                "crates/proto/src/shard.rs",
                "crates/proto/src/arena.rs",
                "crates/sim/src/shard.rs",
            ]
            .map(String::from)
            .to_vec(),
        }
    }
}

/// Metadata for one file being linted.
pub struct FileCtx<'a> {
    /// Crate directory name under `crates/` (e.g. `proto`).
    pub crate_name: &'a str,
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// True for crate root files (`src/lib.rs`, `src/main.rs`).
    pub is_crate_root: bool,
    /// Total number of source lines (for the M1 size rule).
    pub line_count: u32,
}

/// Integer-ish cast targets whose range is narrower than the workspace's
/// canonical working widths (`u64` block counts, 64-bit `usize` lengths,
/// `f64` rates) — a cast *into* these from an unknown source is flagged.
const NARROW_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// All numeric cast targets C2 inspects.
const NUMERIC_TARGETS: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

const INT_TARGETS: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Lint one file's token stream. Applies all content rules in scope for
/// the crate, the `#[cfg(test)]` mask, and allow-escape filtering.
pub fn lint_tokens(ctx: &FileCtx<'_>, lexed: &Lexed, mask: &[bool], cfg: &Config) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut raw: Vec<Finding> = Vec::new();
    let push = |raw: &mut Vec<Finding>, line: u32, rule: RuleId, message: String| {
        raw.push(Finding {
            file: ctx.rel_path.to_string(),
            line,
            rule,
            message,
        });
    };

    let det = cfg.det_crates.iter().any(|c| c == ctx.crate_name);
    let cast = cfg.cast_crates.iter().any(|c| c == ctx.crate_name);
    let panic_ok = cfg.panic_exempt_crates.iter().any(|c| c == ctx.crate_name);
    let entropy_ok = cfg.entropy_files.iter().any(|f| f == ctx.rel_path);
    let arena_ok = cfg.arena_files.iter().any(|f| f == ctx.rel_path);
    let shard_ok = cfg.shard_files.iter().any(|f| f == ctx.rel_path);

    for i in 0..toks.len() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];

        // D1 — nondeterministic collections in deterministic crates.
        if det && t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            let alt = if t.text == "HashMap" {
                "BTreeMap (or cs-sim's DetMap)"
            } else {
                "BTreeSet (or cs-sim's DetSet)"
            };
            push(
                &mut raw,
                t.line,
                RuleId::D1,
                format!(
                    "`{}` iteration order is nondeterministic; use {} in deterministic crates",
                    t.text, alt
                ),
            );
        }

        // D2 — wall-clock time / ambient randomness.
        if !entropy_ok && t.kind == TokKind::Ident {
            let hit = match t.text.as_str() {
                "SystemTime" => Some("`SystemTime` reads the wall clock"),
                "thread_rng" => Some("`thread_rng` is ambient, unseeded randomness"),
                "Instant"
                    if matches!(toks.get(i + 1), Some(n) if n.is_punct("::"))
                        && matches!(toks.get(i + 2), Some(n) if n.is_ident("now")) =>
                {
                    Some("`Instant::now` reads the wall clock")
                }
                "random"
                    if i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident("rand") =>
                {
                    Some("`rand::random` is ambient, unseeded randomness")
                }
                _ => None,
            };
            if let Some(what) = hit {
                push(
                    &mut raw,
                    t.line,
                    RuleId::D2,
                    format!("{what}; derive all time/randomness from SimTime and the seeded RNG"),
                );
            }
        }

        // C1 — float equality.
        if t.is_punct("==") || t.is_punct("!=") {
            let float_ish = |tok: &Tok| -> bool {
                tok.kind == TokKind::Float
                    || (tok.kind == TokKind::Ident
                        && matches!(
                            tok.text.as_str(),
                            "f32" | "f64" | "NAN" | "INFINITY" | "NEG_INFINITY"
                        ))
            };
            // Look one token back, and forward skipping `(` and unary `-`.
            let prev_hit = i >= 1 && float_ish(&toks[i - 1]);
            let mut j = i + 1;
            while j < toks.len() && (toks[j].is_punct("(") || toks[j].is_punct("-")) {
                j += 1;
            }
            let next_hit = j < toks.len() && float_ish(&toks[j]);
            if prev_hit || next_hit {
                push(
                    &mut raw,
                    t.line,
                    RuleId::C1,
                    format!(
                        "float `{}` comparison; compare with an explicit tolerance or restructure",
                        t.text
                    ),
                );
            }
        }

        // C2 — lossy numeric `as` casts.
        if cast && t.is_ident("as") {
            if let Some(target) = toks
                .get(i + 1)
                .filter(|n| n.kind == TokKind::Ident && NUMERIC_TARGETS.contains(&n.text.as_str()))
            {
                let tgt = target.text.as_str();
                let verdict = cast_verdict(toks, i, tgt);
                if let Some(why) = verdict {
                    push(
                        &mut raw,
                        t.line,
                        RuleId::C2,
                        format!(
                            "{why} in `as {tgt}` cast; use `From`/`TryFrom` or escape with \
                             `// cs-lint: allow(lossy-cast) — <why safe>`"
                        ),
                    );
                }
            }
        }

        // A1 — raw peer-arena access outside the accessor seam. Flags
        // `peers[…]` / `arena[…]` subscripts and `.get(…)`/`.get_mut(…)`
        // calls on receivers named `peers`/`arena`; method calls like
        // `world.peers()` (next token `(`) are the sanctioned API and
        // don't match.
        if det && !arena_ok && t.kind == TokKind::Ident && (t.text == "peers" || t.text == "arena")
        {
            let indexed = matches!(toks.get(i + 1), Some(n) if n.is_punct("["));
            let raw_get = matches!(toks.get(i + 1), Some(n) if n.is_punct("."))
                && matches!(toks.get(i + 2), Some(n) if n.is_ident("get") || n.is_ident("get_mut"))
                && matches!(toks.get(i + 3), Some(n) if n.is_punct("("));
            if indexed || raw_get {
                push(
                    &mut raw,
                    t.line,
                    RuleId::A1,
                    format!(
                        "raw `{}` access bypasses the generational accessor seam; go through \
                         the CsWorld peer accessors (world.rs) or escape with \
                         `// cs-lint: allow(arena-access) — <invariant>`",
                        t.text
                    ),
                );
            }
        }

        // A2 — raw shard-partition access outside the router seam. Flags
        // `shards[…]` subscripts and `shard_pair_mut(…)` calls; method
        // calls like `world.shards()` or `map.shard_of(id)` are the
        // sanctioned API and don't match.
        if det && !shard_ok && t.kind == TokKind::Ident {
            let indexed =
                t.text == "shards" && matches!(toks.get(i + 1), Some(n) if n.is_punct("["));
            let pair_call =
                t.text == "shard_pair_mut" && matches!(toks.get(i + 1), Some(n) if n.is_punct("("));
            if indexed || pair_call {
                push(
                    &mut raw,
                    t.line,
                    RuleId::A2,
                    format!(
                        "raw `{}` partition access couples callers to the shard layout; go \
                         through the CsWorld router accessors or escape with \
                         `// cs-lint: allow(shard-isolation) — <ownership invariant>`",
                        t.text
                    ),
                );
            }
        }

        // C3 — panics in library code.
        if !panic_ok && t.kind == TokKind::Ident {
            let method_call = |name: &str| -> bool {
                t.text == name
                    && i >= 1
                    && toks[i - 1].is_punct(".")
                    && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
            };
            let bang_macro = |name: &str| -> bool {
                t.text == name && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"))
            };
            let hit = if method_call("unwrap") || method_call("expect") {
                Some(format!("`.{}()` can panic", t.text))
            } else if bang_macro("panic")
                || bang_macro("unreachable")
                || bang_macro("todo")
                || bang_macro("unimplemented")
            {
                Some(format!("`{}!` aborts the simulation", t.text))
            } else {
                None
            };
            if let Some(what) = hit {
                push(
                    &mut raw,
                    t.line,
                    RuleId::C3,
                    format!(
                        "{what}; return an error/default, or escape with a proof of unreachability"
                    ),
                );
            }
        }
    }

    // S1 — crate roots must forbid unsafe code.
    if ctx.is_crate_root && !has_forbid_unsafe(toks) {
        push(
            &mut raw,
            1,
            RuleId::S1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }

    // M1 — deterministic-scope files must stay decomposable. The CsWorld
    // god-object was split along the paper's manager seams (DESIGN.md §9);
    // this backstop keeps any det-scope file from silently regrowing.
    if det && ctx.line_count > cfg.max_file_lines {
        push(
            &mut raw,
            1,
            RuleId::M1,
            format!(
                "file is {} lines (limit {}); split it along module seams or escape \
                 on line 1 with `// cs-lint: allow(file-size) — <why one unit>`",
                ctx.line_count, cfg.max_file_lines
            ),
        );
    }

    apply_escapes(raw, &lexed.escapes, ctx.rel_path)
}

/// Decide whether the cast ending at `toks[as_ix]` (`as` keyword) into
/// `tgt` is potentially lossy. Returns `Some(reason)` to flag.
///
/// Judgement is token-local (no type inference):
/// * integer literal sources are value-checked against the target range;
/// * float literal sources are lossy into integer targets;
/// * `.floor()/.ceil()/.round()/.trunc()` sources into integers are
///   explicit truncations — flagged so the range argument gets written
///   down in an escape;
/// * any other source is flagged only for *narrow* targets
///   (`u8..=u32`, `i8..=i32`, `f32`); the workspace's canonical working
///   types (`u32`/`u64`/64-bit `usize`) widen losslessly into the rest.
fn cast_verdict(toks: &[Tok], as_ix: usize, tgt: &str) -> Option<String> {
    if as_ix == 0 {
        return None;
    }
    let src = &toks[as_ix - 1];
    match src.kind {
        TokKind::Int => {
            let neg = as_ix >= 2 && toks[as_ix - 2].is_punct("-");
            match int_literal_fits(&src.text, neg, tgt) {
                Some(true) => None,
                Some(false) => Some(format!("literal `{}` does not fit", src.text)),
                None => Some(format!("unparseable literal `{}`", src.text)),
            }
        }
        TokKind::Float => {
            if INT_TARGETS.contains(&tgt) {
                Some("float literal truncated".to_string())
            } else {
                None
            }
        }
        TokKind::Punct if src.text == ")" => {
            // `.floor() as u64` style explicit-rounding chain?
            let rounding = as_ix >= 4
                && toks[as_ix - 2].is_punct("(")
                && toks[as_ix - 4].is_punct(".")
                && matches!(
                    toks[as_ix - 3].text.as_str(),
                    "floor" | "ceil" | "round" | "trunc"
                )
                && toks[as_ix - 3].kind == TokKind::Ident;
            if rounding && INT_TARGETS.contains(&tgt) {
                Some(format!(
                    "float→`{tgt}` truncation after `.{}()`",
                    toks[as_ix - 3].text
                ))
            } else if NARROW_TARGETS.contains(&tgt) {
                Some("possible narrowing".to_string())
            } else {
                None
            }
        }
        _ => {
            if NARROW_TARGETS.contains(&tgt) {
                Some("possible narrowing".to_string())
            } else {
                None
            }
        }
    }
}

/// Does `lit` (Rust integer literal text, optional suffix/underscores,
/// optionally negated) fit in the numeric type `tgt`? 64-bit `usize`
/// assumed (declared workspace-wide in DESIGN.md §7).
fn int_literal_fits(lit: &str, neg: bool, tgt: &str) -> Option<bool> {
    let cleaned: String = lit.chars().filter(|&c| c != '_').collect();
    // Take the leading digit run; anything after is a type suffix. (A
    // suffix like `u64` contains digits, so trimming from the end would
    // eat into it — scan from the front instead.)
    let (rest, radix): (&str, u32) = if let Some(r) = cleaned.strip_prefix("0x") {
        (r, 16)
    } else if let Some(r) = cleaned.strip_prefix("0o") {
        (r, 8)
    } else if let Some(r) = cleaned.strip_prefix("0b") {
        (r, 2)
    } else {
        (cleaned.as_str(), 10)
    };
    let end = rest
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    let v = u128::from_str_radix(&rest[..end], radix).ok()?;
    let fits = if neg {
        let min_abs: u128 = match tgt {
            "i8" => 128,
            "i16" => 32768,
            "i32" => 1 << 31,
            "i64" | "isize" => 1 << 63,
            "i128" => 1 << 127,
            "f32" => 1 << 24,
            "f64" => 1 << 53,
            _ => 0, // negative into unsigned never fits
        };
        v <= min_abs
    } else {
        let max: u128 = match tgt {
            "u8" => u8::MAX as u128,
            "u16" => u16::MAX as u128,
            "u32" => u32::MAX as u128,
            "u64" | "usize" => u64::MAX as u128,
            "u128" => u128::MAX,
            "i8" => i8::MAX as u128,
            "i16" => i16::MAX as u128,
            "i32" => i32::MAX as u128,
            "i64" | "isize" => i64::MAX as u128,
            "i128" => i128::MAX as u128,
            "f32" => 1 << 24,
            "f64" => 1 << 53,
            _ => return None,
        };
        v <= max
    };
    Some(fits)
}

/// Token-level check for `#![forbid(unsafe_code)]` anywhere in the file.
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.iter().enumerate().any(|(i, t)| {
        t.is_ident("forbid")
            && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
            && toks[i + 1..]
                .iter()
                .take_while(|n| !n.is_punct(")"))
                .any(|n| n.is_ident("unsafe_code"))
    })
}

/// Filter findings through the allow-escapes and emit meta-findings for
/// malformed escapes. An escape on line `L` covers findings of its rule on
/// lines `L` (trailing comment) and `L + 1` (comment-above style).
fn apply_escapes(raw: Vec<Finding>, escapes: &[AllowEscape], rel_path: &str) -> Vec<Finding> {
    let mut out = escape_meta_findings(escapes, rel_path);
    out.extend(filter_escapes(raw, escapes));
    out
}

/// E1/E2 meta-findings for malformed escape comments. Emitted once per
/// file by the per-file pass (cross-file rules reuse only the filter).
pub fn escape_meta_findings(escapes: &[AllowEscape], rel_path: &str) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    let known = |slug: &str| RuleId::escapable().any(|r| r.slug() == slug);

    for e in escapes {
        if !known(&e.slug) {
            out.push(Finding {
                file: rel_path.to_string(),
                line: e.line,
                rule: RuleId::E2,
                message: format!(
                    "escape names unknown rule `{}`; one of: {}",
                    e.slug,
                    RuleId::escapable()
                        .map(|r| r.slug())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        } else if !e.has_reason {
            out.push(Finding {
                file: rel_path.to_string(),
                line: e.line,
                rule: RuleId::E1,
                message: format!(
                    "escape for `{}` has no reason; write `// cs-lint: allow({}) — <why safe>`",
                    e.slug, e.slug
                ),
            });
        }
    }
    out
}

/// Drop findings covered by a well-formed escape of the matching rule on
/// the same line or the line above.
pub fn filter_escapes(raw: Vec<Finding>, escapes: &[AllowEscape]) -> Vec<Finding> {
    raw.into_iter()
        .filter(|f| {
            !escapes.iter().any(|e| {
                e.has_reason
                    && e.slug == f.rule.slug()
                    && (e.line == f.line || e.line + 1 == f.line)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_fit_checks() {
        assert_eq!(int_literal_fits("255", false, "u8"), Some(true));
        assert_eq!(int_literal_fits("256", false, "u8"), Some(false));
        assert_eq!(int_literal_fits("0xff", false, "u8"), Some(true));
        assert_eq!(int_literal_fits("1_000", false, "u16"), Some(true));
        assert_eq!(int_literal_fits("40", false, "i8"), Some(true));
        assert_eq!(int_literal_fits("200", false, "i8"), Some(false));
        assert_eq!(int_literal_fits("1", true, "u32"), Some(false));
        assert_eq!(int_literal_fits("128", true, "i8"), Some(true));
        assert_eq!(int_literal_fits("300u64", false, "u64"), Some(true));
    }
}
