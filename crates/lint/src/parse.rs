//! A forgiving brace-tree / item parser over the [`lexer`](crate::lexer)
//! token stream.
//!
//! This is deliberately *not* a Rust grammar: the cross-file rules only
//! need to recover the **item skeleton** of a file — modules, `struct`
//! fields with their visibility, `enum` variants, `fn` items with body
//! spans, `impl` blocks with trait/type names — plus a helper that splits
//! a `match` expression into arms. Everything else is skipped by brace
//! balancing. Unparseable input degrades to fewer recovered items, never
//! to a panic: a linter must stay forgiving on code it does not fully
//! understand.
//!
//! Token spans are `(start, end)` index pairs into the token slice the
//! items were parsed from; `end` is inclusive and points at the closing
//! delimiter.

use crate::lexer::{Tok, TokKind};

/// Item visibility, as far as the rules care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vis {
    /// No `pub` modifier.
    Private,
    /// Plain `pub`.
    Pub,
    /// `pub(crate)`.
    PubCrate,
    /// `pub(super)` — the manager-ownership marker P1 keys on.
    PubSuper,
    /// `pub(in path)` or other restricted forms.
    PubOther,
}

/// A named struct field or enum variant.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field or variant name.
    pub name: String,
    /// Declared visibility (always `Private` for enum variants).
    pub vis: Vis,
    /// 1-based source line of the name token.
    pub line: u32,
}

/// What kind of item was recovered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`.
    Mod,
    /// `struct Name { fields }` (tuple/unit structs carry no fields).
    Struct,
    /// `enum Name { variants }`.
    Enum,
    /// `fn name(…) { … }`.
    Fn,
    /// `impl [Trait for] Type { … }`.
    Impl,
    /// `const NAME: T = …;` or `static NAME: T = …;`.
    Const,
    /// `trait Name { … }`.
    Trait,
}

/// One recovered item.
#[derive(Clone, Debug)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name. For `impl` blocks this is the *type* name (first path
    /// identifier after `for`, or after `impl` when inherent).
    pub name: String,
    /// For `impl Trait for Type`: the trait's first path identifier.
    pub trait_name: Option<String>,
    /// For `impl Trait<Arg> for Type`: the first identifier inside the
    /// trait's angle brackets (e.g. the event type of `KindClassify<E>`).
    pub trait_arg: Option<String>,
    /// Declared visibility.
    pub vis: Vis,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// Token span of the `{ … }` body (braces inclusive), if any.
    pub body: Option<(usize, usize)>,
    /// Struct fields or enum variants.
    pub fields: Vec<Field>,
    /// Nested items (module bodies, impl/trait members).
    pub children: Vec<Item>,
}

impl Item {
    /// Depth-first search over this item and its children.
    pub fn walk<'a>(&'a self, out: &mut Vec<&'a Item>) {
        out.push(self);
        for c in &self.children {
            c.walk(out);
        }
    }
}

/// Flatten an item forest depth-first.
pub fn all_items(items: &[Item]) -> Vec<&Item> {
    let mut out = Vec::new();
    for it in items {
        it.walk(&mut out);
    }
    out
}

/// Parse the item skeleton of a whole file.
pub fn parse_items(toks: &[Tok]) -> Vec<Item> {
    parse_range(toks, 0, toks.len())
}

/// Index just past the matching closer for the opener at `open`
/// (`{`/`}`, `[`/`]`, `(`/`)` all tracked together so mixed nesting
/// stays balanced).
fn skip_balanced(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct("{") || toks[i].is_punct("[") || toks[i].is_punct("(") {
            depth += 1;
        } else if toks[i].is_punct("}") || toks[i].is_punct("]") || toks[i].is_punct(")") {
            depth -= 1;
            if depth <= 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Index just past a balanced `<…>` group starting at `open` (`<`).
/// Paren/bracket/brace groups inside are skipped whole, so a `Fn(A) -> B`
/// bound cannot desynchronize the angle count.
fn skip_angles(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
            if depth <= 0 {
                return i + 1;
            }
        } else if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            i = skip_balanced(toks, i);
            continue;
        }
        i += 1;
    }
    toks.len()
}

/// Parse a visibility modifier at `i`; returns `(vis, next_index)`.
fn parse_vis(toks: &[Tok], i: usize) -> (Vis, usize) {
    if !toks.get(i).map(|t| t.is_ident("pub")).unwrap_or(false) {
        return (Vis::Private, i);
    }
    if toks.get(i + 1).map(|t| t.is_punct("(")).unwrap_or(false) {
        let end = skip_balanced(toks, i + 1);
        let vis = match toks.get(i + 2) {
            Some(t) if t.is_ident("crate") => Vis::PubCrate,
            Some(t) if t.is_ident("super") => Vis::PubSuper,
            _ => Vis::PubOther,
        };
        (vis, end)
    } else {
        (Vis::Pub, i + 1)
    }
}

/// Skip any `#[…]` / `#![…]` attributes at `i`.
fn skip_attrs(toks: &[Tok], mut i: usize) -> usize {
    while toks.get(i).map(|t| t.is_punct("#")).unwrap_or(false) {
        let mut j = i + 1;
        if toks.get(j).map(|t| t.is_punct("!")).unwrap_or(false) {
            j += 1;
        }
        if toks.get(j).map(|t| t.is_punct("[")).unwrap_or(false) {
            i = skip_balanced(toks, j);
        } else {
            return i;
        }
    }
    i
}

/// Parse items in `toks[start..end]` (an item-level region: file top
/// level, a `mod` body, or an `impl`/`trait` body).
fn parse_range(toks: &[Tok], start: usize, end: usize) -> Vec<Item> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        i = skip_attrs(toks, i);
        if i >= end {
            break;
        }
        let (vis, after_vis) = parse_vis(toks, i);
        let mut j = after_vis;
        // Skim qualifier keywords that may precede the item keyword.
        while toks
            .get(j)
            .map(|t| {
                t.is_ident("unsafe")
                    || t.is_ident("async")
                    || t.is_ident("extern")
                    || t.is_ident("default")
            })
            .unwrap_or(false)
        {
            j += 1;
            // `extern "C"` carries a string literal.
            if toks.get(j).map(|t| t.kind == TokKind::Str).unwrap_or(false) {
                j += 1;
            }
        }
        let Some(kw) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            i = skip_past_token(toks, i.max(j), end);
            continue;
        };
        let line = kw.line;
        match kw.text.as_str() {
            "mod" => {
                let name = ident_at(toks, j + 1);
                match toks.get(j + 2) {
                    Some(t) if t.is_punct("{") => {
                        let close = skip_balanced(toks, j + 2) - 1;
                        let children = parse_range(toks, j + 3, close.min(end));
                        out.push(Item {
                            kind: ItemKind::Mod,
                            name,
                            trait_name: None,
                            trait_arg: None,
                            vis,
                            line,
                            body: Some((j + 2, close)),
                            fields: Vec::new(),
                            children,
                        });
                        i = close + 1;
                    }
                    _ => {
                        out.push(Item {
                            kind: ItemKind::Mod,
                            name,
                            trait_name: None,
                            trait_arg: None,
                            vis,
                            line,
                            body: None,
                            fields: Vec::new(),
                            children: Vec::new(),
                        });
                        i = j + 3;
                    }
                }
            }
            "struct" | "enum" => {
                let is_enum = kw.text == "enum";
                let name = ident_at(toks, j + 1);
                let mut k = j + 2;
                if toks.get(k).map(|t| t.is_punct("<")).unwrap_or(false) {
                    k = skip_angles(toks, k);
                }
                match toks.get(k) {
                    Some(t) if t.is_punct("{") => {
                        let close = skip_balanced(toks, k) - 1;
                        let fields = if is_enum {
                            parse_variants(toks, k + 1, close)
                        } else {
                            parse_fields(toks, k + 1, close)
                        };
                        out.push(Item {
                            kind: if is_enum {
                                ItemKind::Enum
                            } else {
                                ItemKind::Struct
                            },
                            name,
                            trait_name: None,
                            trait_arg: None,
                            vis,
                            line,
                            body: Some((k, close)),
                            fields,
                            children: Vec::new(),
                        });
                        i = close + 1;
                    }
                    Some(t) if t.is_punct("(") => {
                        // Tuple struct: skip to terminating `;`.
                        let after = skip_balanced(toks, k);
                        out.push(Item {
                            kind: ItemKind::Struct,
                            name,
                            trait_name: None,
                            trait_arg: None,
                            vis,
                            line,
                            body: None,
                            fields: Vec::new(),
                            children: Vec::new(),
                        });
                        i = skip_past_token(toks, after, end);
                    }
                    _ => {
                        // Unit struct or unparseable: resync at `;`.
                        out.push(Item {
                            kind: ItemKind::Struct,
                            name,
                            trait_name: None,
                            trait_arg: None,
                            vis,
                            line,
                            body: None,
                            fields: Vec::new(),
                            children: Vec::new(),
                        });
                        i = skip_past_token(toks, k, end);
                    }
                }
            }
            "fn" => {
                let name = ident_at(toks, j + 1);
                let mut k = j + 2;
                if toks.get(k).map(|t| t.is_punct("<")).unwrap_or(false) {
                    k = skip_angles(toks, k);
                }
                // Parameter list.
                let params = if toks.get(k).map(|t| t.is_punct("(")).unwrap_or(false) {
                    let close = skip_balanced(toks, k) - 1;
                    let span = (k, close);
                    k = close + 1;
                    Some(span)
                } else {
                    None
                };
                // Scan to the body `{` or a trait-decl `;` at depth 0.
                let mut body = None;
                while k < end {
                    let t = &toks[k];
                    if t.is_punct("{") {
                        let close = skip_balanced(toks, k) - 1;
                        body = Some((k, close));
                        k = close + 1;
                        break;
                    }
                    if t.is_punct(";") {
                        k += 1;
                        break;
                    }
                    if t.is_punct("(") || t.is_punct("[") {
                        k = skip_balanced(toks, k);
                        continue;
                    }
                    if t.is_punct("<") {
                        k = skip_angles(toks, k);
                        continue;
                    }
                    k += 1;
                }
                let mut fields = Vec::new();
                if let Some((ps, pe)) = params {
                    fields = parse_params(toks, ps + 1, pe);
                }
                out.push(Item {
                    kind: ItemKind::Fn,
                    name,
                    trait_name: None,
                    trait_arg: None,
                    vis,
                    line,
                    body,
                    fields,
                    children: Vec::new(),
                });
                i = k;
            }
            "impl" | "trait" => {
                let is_impl = kw.text == "impl";
                let mut k = j + 1;
                if toks.get(k).map(|t| t.is_punct("<")).unwrap_or(false) {
                    k = skip_angles(toks, k);
                }
                // Collect header tokens until the body `{` (or `;`).
                let header_start = k;
                let mut for_ix = None;
                while k < end {
                    let t = &toks[k];
                    if t.is_punct("{") || t.is_punct(";") {
                        break;
                    }
                    if t.is_ident("for") && for_ix.is_none() {
                        for_ix = Some(k);
                    }
                    if t.is_punct("<") {
                        k = skip_angles(toks, k);
                        continue;
                    }
                    if t.is_punct("(") || t.is_punct("[") {
                        k = skip_balanced(toks, k);
                        continue;
                    }
                    k += 1;
                }
                // `for` inside a `where` clause is not the impl's `for`.
                let where_ix = (header_start..k).find(|&ix| toks[ix].is_ident("where"));
                let for_ix = for_ix.filter(|&f| where_ix.map(|w| f < w).unwrap_or(true));
                let (trait_name, trait_arg, name) = if is_impl {
                    match for_ix {
                        Some(f) => {
                            let tn = first_ident_in(toks, header_start, f);
                            let ta = angle_arg_in(toks, header_start, f);
                            let ty = first_ident_in(toks, f + 1, where_ix.unwrap_or(k));
                            (Some(tn), ta, ty)
                        }
                        None => (
                            None,
                            None,
                            first_ident_in(toks, header_start, where_ix.unwrap_or(k)),
                        ),
                    }
                } else {
                    (None, None, first_ident_in(toks, header_start, k))
                };
                if toks.get(k).map(|t| t.is_punct("{")).unwrap_or(false) {
                    let close = skip_balanced(toks, k) - 1;
                    let children = parse_range(toks, k + 1, close.min(end));
                    out.push(Item {
                        kind: if is_impl {
                            ItemKind::Impl
                        } else {
                            ItemKind::Trait
                        },
                        name,
                        trait_name,
                        trait_arg,
                        vis,
                        line,
                        body: Some((k, close)),
                        fields: Vec::new(),
                        children,
                    });
                    i = close + 1;
                } else {
                    i = k + 1;
                }
            }
            "const" | "static" => {
                // `const NAME: T = …;` — `const fn` is handled by the `fn`
                // arm on the next pass because we only advance past `const`.
                if toks.get(j + 1).map(|t| t.is_ident("fn")).unwrap_or(false) {
                    i = j + 1;
                    continue;
                }
                let name = ident_at(toks, j + 1);
                out.push(Item {
                    kind: ItemKind::Const,
                    name,
                    trait_name: None,
                    trait_arg: None,
                    vis,
                    line,
                    body: None,
                    fields: Vec::new(),
                    children: Vec::new(),
                });
                i = skip_past_token(toks, j + 1, end);
            }
            "use" | "type" => {
                i = skip_past_token(toks, j + 1, end);
            }
            "macro_rules" => {
                // `macro_rules! name { … }`.
                let mut k = j + 1;
                while k < end && !toks[k].is_punct("{") {
                    k += 1;
                }
                i = if k < end { skip_balanced(toks, k) } else { end };
            }
            _ => {
                i = j + 1;
            }
        }
    }
    out
}

/// Advance past the next `;` at delimiter depth 0 (for statements whose
/// initializer may contain braces, e.g. `const X: [u64; 2] = { … };`).
fn skip_past_token(toks: &[Tok], from: usize, end: usize) -> usize {
    let mut i = from;
    while i < end {
        let t = &toks[i];
        if t.is_punct(";") {
            return i + 1;
        }
        if t.is_punct("{") || t.is_punct("[") || t.is_punct("(") {
            i = skip_balanced(toks, i);
            continue;
        }
        i += 1;
    }
    end
}

fn ident_at(toks: &[Tok], i: usize) -> String {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default()
}

fn first_ident_in(toks: &[Tok], start: usize, end: usize) -> String {
    toks[start..end.min(toks.len())]
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text != "dyn")
        .map(|t| t.text.clone())
        .unwrap_or_default()
}

/// First identifier strictly inside the first `<…>` group of the span —
/// the `E` of `KindClassify<E>`.
fn angle_arg_in(toks: &[Tok], start: usize, end: usize) -> Option<String> {
    let open = (start..end.min(toks.len())).find(|&ix| toks[ix].is_punct("<"))?;
    toks[open + 1..end.min(toks.len())]
        .iter()
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

/// Split `toks[start..end]` (the inside of a struct body) into fields.
fn parse_fields(toks: &[Tok], start: usize, end: usize) -> Vec<Field> {
    let mut out = Vec::new();
    for (cs, ce) in split_commas(toks, start, end) {
        let i = skip_attrs(toks, cs);
        let (vis, after_vis) = parse_vis(toks, i);
        if let Some(t) = toks.get(after_vis).filter(|t| t.kind == TokKind::Ident) {
            if toks
                .get(after_vis + 1)
                .map(|n| n.is_punct(":"))
                .unwrap_or(false)
                && after_vis < ce
            {
                out.push(Field {
                    name: t.text.clone(),
                    vis,
                    line: t.line,
                });
            }
        }
    }
    out
}

/// Split `toks[start..end]` (the inside of an enum body) into variants.
fn parse_variants(toks: &[Tok], start: usize, end: usize) -> Vec<Field> {
    let mut out = Vec::new();
    for (cs, _ce) in split_commas(toks, start, end) {
        let i = skip_attrs(toks, cs);
        if let Some(t) = toks.get(i).filter(|t| t.kind == TokKind::Ident) {
            out.push(Field {
                name: t.text.clone(),
                vis: Vis::Private,
                line: t.line,
            });
        }
    }
    out
}

/// Parameters of a fn item: each typed `name: Type` pair (receivers like
/// `&mut self` produce a `self` entry). The field's `name` is the
/// parameter name; the *type* tokens are not retained, but
/// [`params_mention`] answers the one question rules ask.
fn parse_params(toks: &[Tok], start: usize, end: usize) -> Vec<Field> {
    let mut out = Vec::new();
    for (cs, ce) in split_commas(toks, start, end) {
        let i = skip_attrs(toks, cs);
        // Find the param name: the identifier directly before the first
        // `:` at depth 0, or a bare `self` receiver.
        let colon = (i..ce).find(|&ix| toks[ix].is_punct(":"));
        match colon {
            Some(c) if c > i => {
                if let Some(t) = toks.get(c - 1).filter(|t| t.kind == TokKind::Ident) {
                    out.push(Field {
                        name: t.text.clone(),
                        vis: Vis::Private,
                        line: t.line,
                    });
                }
            }
            _ => {
                if let Some(t) = toks[i..ce].iter().find(|t| t.is_ident("self")) {
                    out.push(Field {
                        name: "self".to_string(),
                        vis: Vis::Private,
                        line: t.line,
                    });
                }
            }
        }
    }
    out
}

/// Does the parameter list of fn item `f` (token span over the original
/// slice) mention identifier `what` anywhere (name or type position)?
pub fn params_mention(toks: &[Tok], f: &Item, what: &str) -> bool {
    // Re-derive the param span from the body/name: the params were parsed
    // from the `(`..`)` directly after the name; simplest faithful check
    // is to scan from the item's line… instead, rules pass the span they
    // know. This helper takes the item's recorded body span start as the
    // right boundary.
    let hi = f.body.map(|(s, _)| s).unwrap_or(toks.len());
    // Scan backwards is fragile; scan the whole header region of the fn.
    let lo = toks[..hi]
        .iter()
        .rposition(|t| t.is_ident("fn"))
        .unwrap_or(0);
    toks[lo..hi].iter().any(|t| t.is_ident(what))
}

/// Split an item-body region into comma-separated chunks at delimiter
/// depth 0. Returns `(start, end)` half-open spans; empty chunks are
/// dropped.
fn split_commas(toks: &[Tok], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut chunk_start = start;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct("{") || t.is_punct("[") || t.is_punct("(") {
            i = skip_balanced(toks, i);
            continue;
        }
        if t.is_punct("<") {
            // Angle groups inside types (`BTreeMap<K, V>`) hide commas.
            i = skip_angles(toks, i);
            continue;
        }
        if t.is_punct(",") {
            if i > chunk_start {
                out.push((chunk_start, i));
            }
            chunk_start = i + 1;
        }
        i += 1;
    }
    if end > chunk_start {
        out.push((chunk_start, end));
    }
    out
}

/// One arm of a `match` expression.
#[derive(Clone, Debug)]
pub struct MatchArm {
    /// Token span of the pattern (half-open).
    pub pat: (usize, usize),
    /// 1-based line of the pattern's first token.
    pub line: u32,
    /// Token span of the arm body (half-open).
    pub body: (usize, usize),
}

/// Find the first `match` expression inside `span` (half-open token
/// range) and split it into arms. Returns `None` when no match is found.
pub fn first_match_arms(toks: &[Tok], span: (usize, usize)) -> Option<Vec<MatchArm>> {
    let (start, end) = (span.0, span.1.min(toks.len()));
    let m = (start..end).find(|&ix| toks[ix].is_ident("match"))?;
    // The match body is the first `{` after the head expression at
    // delimiter depth 0 (head parens/brackets are skipped whole).
    let mut i = m + 1;
    let open = loop {
        if i >= end {
            return None;
        }
        let t = &toks[i];
        if t.is_punct("{") {
            break i;
        }
        if t.is_punct("(") || t.is_punct("[") {
            i = skip_balanced(toks, i);
            continue;
        }
        i += 1;
    };
    let close = skip_balanced(toks, open) - 1;
    let mut arms = Vec::new();
    let mut i = open + 1;
    while i < close {
        i = skip_attrs(toks, i);
        if i >= close {
            break;
        }
        let pat_start = i;
        // Pattern runs to `=>` at depth 0.
        let mut depth = 0i32;
        let mut arrow = None;
        let mut j = i;
        while j < close {
            let t = &toks[j];
            if t.is_punct("{") || t.is_punct("[") || t.is_punct("(") {
                depth += 1;
            } else if t.is_punct("}") || t.is_punct("]") || t.is_punct(")") {
                depth -= 1;
            } else if t.is_punct("=>") && depth == 0 {
                arrow = Some(j);
                break;
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        let line = toks[pat_start].line;
        // Body: a balanced block, or an expression up to `,` at depth 0.
        let body_start = arrow + 1;
        let body_end;
        let mut next;
        if toks
            .get(body_start)
            .map(|t| t.is_punct("{"))
            .unwrap_or(false)
        {
            let bclose = skip_balanced(toks, body_start).min(close + 1);
            body_end = bclose;
            next = bclose;
            if toks.get(next).map(|t| t.is_punct(",")).unwrap_or(false) {
                next += 1;
            }
        } else {
            let mut depth = 0i32;
            let mut j = body_start;
            while j < close {
                let t = &toks[j];
                if t.is_punct("{") || t.is_punct("[") || t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct("}") || t.is_punct("]") || t.is_punct(")") {
                    depth -= 1;
                } else if t.is_punct(",") && depth == 0 {
                    break;
                }
                j += 1;
            }
            body_end = j;
            next = (j + 1).min(close);
        }
        arms.push(MatchArm {
            pat: (pat_start, arrow),
            line,
            body: (body_start, body_end),
        });
        i = next.max(body_end).max(pat_start + 1);
    }
    Some(arms)
}

/// Interpret an arm pattern as `Path::Variant…`: returns
/// `(enum_path_head, variant)` — e.g. `Event::Arrive(_)` →
/// `("Event", "Arrive")`. `None` for wildcards, bindings, literals.
pub fn pat_variant(toks: &[Tok], pat: (usize, usize)) -> Option<(String, String)> {
    let s = &toks[pat.0..pat.1.min(toks.len())];
    // Walk the leading path: Ident (:: Ident)+ — the last two segments
    // are `Enum::Variant` even when the path is `crate::ev::Event::V`.
    let mut segs: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < s.len() {
        match s.get(i) {
            Some(t) if t.kind == TokKind::Ident => segs.push(&t.text),
            _ => break,
        }
        if s.get(i + 1).map(|t| t.is_punct("::")).unwrap_or(false) {
            i += 2;
        } else {
            break;
        }
    }
    if segs.len() >= 2 {
        let variant = segs[segs.len() - 1].to_string();
        let head = segs[segs.len() - 2].to_string();
        Some((head, variant))
    } else {
        None
    }
}

/// Is the arm pattern a catch-all (`_` or a bare binding)?
pub fn pat_is_wildcard(toks: &[Tok], pat: (usize, usize)) -> bool {
    let s = &toks[pat.0..pat.1.min(toks.len())];
    match s {
        [t] => t.kind == TokKind::Ident && pat_variant(toks, pat).is_none(),
        _ => false,
    }
}

/// Interpret an arm body as the tuple `(INT, "str")`: the dense-index /
/// kind-name pair of a `kind_class`-style table.
pub fn body_index_name(toks: &[Tok], body: (usize, usize)) -> Option<(u32, String)> {
    let s = &toks[body.0..body.1.min(toks.len())];
    match s {
        [open, ix, comma, name, close]
            if open.is_punct("(")
                && ix.kind == TokKind::Int
                && comma.is_punct(",")
                && name.kind == TokKind::Str
                && close.is_punct(")") =>
        {
            let digits: String = ix.text.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse::<u32>().ok().map(|v| (v, name.text.clone()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<Item> {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn recovers_struct_fields_with_visibility() {
        let src = r#"
            pub struct S {
                pub a: u32,
                pub(super) b: Vec<Option<u64>>,
                pub(crate) c: BTreeMap<K, V>,
                d: [u64; 4],
            }
        "#;
        let it = items(src);
        assert_eq!(it.len(), 1);
        assert_eq!(it[0].kind, ItemKind::Struct);
        assert_eq!(it[0].name, "S");
        let f: Vec<(&str, Vis)> = it[0]
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.vis))
            .collect();
        assert_eq!(
            f,
            vec![
                ("a", Vis::Pub),
                ("b", Vis::PubSuper),
                ("c", Vis::PubCrate),
                ("d", Vis::Private),
            ]
        );
    }

    #[test]
    fn recovers_enum_variants_with_payloads() {
        let src = r#"
            pub enum Event {
                Arrive(UserSpec),
                Snapshot,
                RegionalOutage { quadrant: u8, heal: SimTime },
            }
        "#;
        let it = items(src);
        assert_eq!(it[0].kind, ItemKind::Enum);
        let v: Vec<&str> = it[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(v, vec!["Arrive", "Snapshot", "RegionalOutage"]);
    }

    #[test]
    fn recovers_impl_trait_for_type() {
        let src = r#"
            impl KindClassify<Event> for EventKinds {
                fn class(event: &Event) -> (u8, &'static str) { event.kind_class() }
            }
            impl<W: World, C: KindClassify<W::Event>> Observer<W> for Obs<W, C> {
                fn on(&mut self) {}
            }
            impl Peer {
                fn id(&self) -> u32 { 0 }
            }
        "#;
        let it = items(src);
        assert_eq!(it.len(), 3);
        assert_eq!(it[0].trait_name.as_deref(), Some("KindClassify"));
        assert_eq!(it[0].trait_arg.as_deref(), Some("Event"));
        assert_eq!(it[0].name, "EventKinds");
        assert_eq!(it[0].children.len(), 1);
        assert_eq!(it[0].children[0].name, "class");
        assert_eq!(it[1].trait_name.as_deref(), Some("Observer"));
        assert_eq!(it[1].name, "Obs");
        assert_eq!(it[2].trait_name, None);
        assert_eq!(it[2].name, "Peer");
    }

    #[test]
    fn nested_modules_and_consts() {
        let src = r#"
            pub mod streams {
                pub const ARRIVALS: u64 = 1;
                pub const SESSIONS: u64 = 2;
            }
            mod helper;
        "#;
        let it = items(src);
        assert_eq!(it.len(), 2);
        assert_eq!(it[0].kind, ItemKind::Mod);
        assert_eq!(it[0].name, "streams");
        let consts: Vec<&str> = it[0]
            .children
            .iter()
            .filter(|c| c.kind == ItemKind::Const)
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(consts, vec!["ARRIVALS", "SESSIONS"]);
        assert_eq!(it[1].name, "helper");
        assert!(it[1].body.is_none());
    }

    #[test]
    fn match_arms_tuple_and_block_bodies() {
        let src = r#"
            fn kind_class(e: &Event) -> (u8, &'static str) {
                match e {
                    Event::Arrive(_) => (0, "arrive"),
                    Event::RegionalOutage { .. } => (1, "regional_outage"),
                    Event::Snapshot => (2, "snapshot"),
                }
            }
        "#;
        let toks = lex(src).tokens;
        let it = parse_items(&toks);
        let body = it[0].body.expect("fn body");
        let arms = first_match_arms(&toks, (body.0, body.1 + 1)).expect("match");
        assert_eq!(arms.len(), 3);
        type ArmFacts = (String, String, Option<(u32, String)>);
        let got: Vec<ArmFacts> = arms
            .iter()
            .map(|a| {
                let (h, v) = pat_variant(&toks, a.pat).expect("variant");
                (h, v, body_index_name(&toks, a.body))
            })
            .collect();
        assert_eq!(got[0].1, "Arrive");
        assert_eq!(got[0].2, Some((0, "arrive".to_string())));
        assert_eq!(got[1].1, "RegionalOutage");
        assert_eq!(got[1].2, Some((1, "regional_outage".to_string())));
        assert_eq!(got[2].2, Some((2, "snapshot".to_string())));
    }

    #[test]
    fn match_arms_with_blocks_and_no_trailing_comma() {
        let src = r#"
            fn handle(&mut self, event: Event) {
                let now = 0;
                match event {
                    Event::Arrive(spec) => m(self).arrive(spec),
                    Event::GossipTick(id) => {
                        if alive(id) { g(self).tick(id); }
                    }
                    Event::Snapshot => {
                        let s = cap(self);
                    }
                    _ => {}
                }
            }
        "#;
        let toks = lex(src).tokens;
        let it = parse_items(&toks);
        let body = it[0].body.expect("fn body");
        let arms = first_match_arms(&toks, (body.0, body.1 + 1)).expect("match");
        assert_eq!(arms.len(), 4);
        assert!(pat_is_wildcard(&toks, arms[3].pat));
        assert_eq!(
            pat_variant(&toks, arms[1].pat),
            Some(("Event".to_string(), "GossipTick".to_string()))
        );
    }

    #[test]
    fn qualified_path_patterns_resolve_to_last_two_segments() {
        let src = "fn f(e: E) { match e { crate::ev::Event::Join(x) => 1, _ => 0 }; }";
        let toks = lex(src).tokens;
        let it = parse_items(&toks);
        let body = it[0].body.expect("fn body");
        let arms = first_match_arms(&toks, (body.0, body.1 + 1)).expect("match");
        assert_eq!(
            pat_variant(&toks, arms[0].pat),
            Some(("Event".to_string(), "Join".to_string()))
        );
    }
}
