//! A small comment- and string-aware Rust lexer.
//!
//! This is deliberately *not* a full Rust grammar: `cs-lint` only needs a
//! token stream that is faithful about what is code versus what is a
//! comment, string, char literal, or lifetime, with accurate line numbers.
//! Everything rule-relevant (identifiers, numeric literals, a handful of
//! two-character operators) is tokenized; the rest degrades to
//! single-character punctuation tokens.
//!
//! The lexer also extracts `cs-lint` *allow-escape* comments so the rule
//! engine can suppress findings, and records which token ranges live under
//! a `#[cfg(test)]` / `#[test]` item so test-only code is exempt from the
//! runtime-determinism rules.

/// What kind of token this is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `as`, `fn`, ...).
    Ident,
    /// Integer literal (`42`, `0xff_u32`).
    Int,
    /// Float literal (`0.0`, `1e-9`, `3f64`).
    Float,
    /// String, byte-string, or raw-string literal. `text` holds the raw
    /// contents between the quotes (escape sequences unprocessed) so
    /// structural rules can read literal tables (e.g. event-kind names);
    /// content rules ignore `Str` tokens entirely.
    Str,
    /// Char literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Punctuation. Multi-character operators that matter to rules
    /// (`==`, `!=`, `<=`, `>=`, `::`, `->`, `=>`) are kept whole;
    /// everything else is a single character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text as it appeared in the source.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// An allow-escape extracted from a comment, e.g.
/// `// cs-lint: allow(lossy-cast) — <reason>`.
#[derive(Clone, Debug)]
pub struct AllowEscape {
    /// 1-based line the escape comment appears on. The escape covers
    /// findings on this line and the next (trailing- and above-style).
    pub line: u32,
    /// The rule slug inside `allow(...)`.
    pub slug: String,
    /// Whether a non-empty reason follows the `allow(...)`.
    pub has_reason: bool,
}

/// Lexer output: tokens plus side-channel comment data.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream (comments and whitespace removed).
    pub tokens: Vec<Tok>,
    /// All allow-escapes found in comments, in source order.
    pub escapes: Vec<AllowEscape>,
}

/// Scan a comment body for a `cs-lint` allow-escape.
fn scan_escape(body: &str, line: u32, out: &mut Vec<AllowEscape>) {
    let Some(at) = body.find("cs-lint:") else {
        return;
    };
    let rest = body[at + "cs-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return;
    };
    let Some(close) = rest.find(')') else {
        return;
    };
    let slug = rest[..close].trim().to_string();
    // A reason must follow the closing paren: any text beyond separator
    // punctuation (dashes, colons) counts.
    let reason = rest[close + 1..]
        .trim_matches(|c: char| c.is_whitespace() || c == '-' || c == ':' || c == '—' || c == '–');
    out.push(AllowEscape {
        line,
        slug,
        has_reason: !reason.is_empty(),
    });
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unterminated constructs simply consume the
/// rest of the input, which is the forgiving behaviour a linter wants.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();

    // Two-char operators we keep whole (rule-relevant or ambiguity-prone).
    const TWO: [&str; 7] = ["==", "!=", "<=", ">=", "::", "->", "=>"];

    while i < n {
        let c = b[i];
        // Whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let body: String = b[start..i].iter().collect();
            scan_escape(&body, line, &mut out.escapes);
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            let mut body_line = line;
            let start = i;
            i += 2;
            let mut seg_start = start;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    let seg: String = b[seg_start..i].iter().collect();
                    scan_escape(&seg, body_line, &mut out.escapes);
                    line += 1;
                    body_line = line;
                    seg_start = i + 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 1;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 1;
                }
                i += 1;
            }
            let seg: String = b[seg_start..i.min(n)].iter().collect();
            scan_escape(&seg, body_line, &mut out.escapes);
            continue;
        }
        // Raw strings / raw identifiers: r"...", r#"..."#, br#"..."#, r#ident.
        if (c == 'r' || c == 'b') && i + 1 < n {
            // Figure out the prefix shape.
            let (p, is_raw) = match (c, b[i + 1]) {
                ('r', '"') | ('r', '#') => (1usize, true),
                ('b', 'r') if i + 2 < n && (b[i + 2] == '"' || b[i + 2] == '#') => (2, true),
                _ => (0, false),
            };
            if is_raw {
                let mut j = i + p;
                let mut hashes = 0usize;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    // Raw string: scan to closing quote + same number of '#'.
                    let tok_line = line;
                    j += 1;
                    let content_start = j;
                    let content_end;
                    loop {
                        if j >= n {
                            content_end = j;
                            break;
                        }
                        if b[j] == '\n' {
                            line += 1;
                            j += 1;
                            continue;
                        }
                        if b[j] == '"' {
                            let mut k = 0usize;
                            while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                content_end = j;
                                j += 1 + hashes;
                                break;
                            }
                        }
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Str,
                        text: b[content_start..content_end.min(n)].iter().collect(),
                        line: tok_line,
                    });
                    i = j;
                    continue;
                } else if hashes > 0 && j < n && is_ident_start(b[j]) && c == 'r' {
                    // Raw identifier r#ident.
                    let start = j;
                    while j < n && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Ident,
                        text: b[start..j].iter().collect(),
                        line,
                    });
                    i = j;
                    continue;
                }
                // Fall through: plain ident starting with r/b.
            }
        }
        // String literal (including b"...").
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let tok_line = line;
            i += if c == 'b' { 2 } else { 1 };
            let content_start = i;
            let mut content_end = n;
            while i < n {
                match b[i] {
                    '\\' => i += 2,
                    '"' => {
                        content_end = i;
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text: b[content_start..content_end.min(n)].iter().collect(),
                line: tok_line,
            });
            continue;
        }
        // Char literal vs lifetime/label.
        if c == '\'' {
            // `'\...'` or `'x'` is a char; `'ident` (not followed by a
            // closing quote) is a lifetime or loop label.
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal: scan to closing quote.
                let tok_line = line;
                i += 2;
                while i < n && b[i] != '\'' {
                    i += 1;
                }
                i += 1;
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: tok_line,
                });
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                i += 3;
                continue;
            }
            // Lifetime / label.
            let start = i;
            i += 1;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Lifetime,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'o' | 'b') {
                i += 2;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                    i += 1;
                }
                // Fractional part: a '.' NOT followed by another '.' (range)
                // or an identifier start (method call like `1.max(2)`).
                if i < n
                    && b[i] == '.'
                    && (i + 1 >= n || (!is_ident_start(b[i + 1]) && b[i + 1] != '.'))
                {
                    is_float = true;
                    i += 1;
                    while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                        i += 1;
                    }
                }
                // Exponent.
                if i < n
                    && (b[i] == 'e' || b[i] == 'E')
                    && i + 1 < n
                    && (b[i + 1].is_ascii_digit()
                        || ((b[i + 1] == '+' || b[i + 1] == '-')
                            && i + 2 < n
                            && b[i + 2].is_ascii_digit()))
                {
                    is_float = true;
                    i += 1;
                    if b[i] == '+' || b[i] == '-' {
                        i += 1;
                    }
                    while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                        i += 1;
                    }
                }
                // Type suffix (u32, f64, ...).
                let suf_start = i;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                let suf: String = b[suf_start..i].iter().collect();
                if suf == "f32" || suf == "f64" {
                    is_float = true;
                }
            }
            out.tokens.push(Tok {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Two-char operators, else single-char punct.
        if i + 1 < n {
            let pair: String = [b[i], b[i + 1]].iter().collect();
            if TWO.contains(&pair.as_str()) {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: pair,
                    line,
                });
                i += 2;
                continue;
            }
        }
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Compute, for each token, whether it lives inside a `#[cfg(test)]` or
/// `#[test]` item (including the attribute itself). Returns a bitmap
/// parallel to `tokens`.
///
/// Recognition is token-shaped, not grammar-shaped: a `#[...]` attribute
/// whose *first* identifier is `cfg` or `test` and which mentions `test`
/// marks the next item. The item extends to the matching `}` of the first
/// `{` encountered, or to the first `;` if one comes first (e.g.
/// `#[cfg(test)] mod tests;`).
pub fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#")
            && i + 1 < tokens.len()
            && tokens[i + 1].is_punct("[")
            && attr_is_test(tokens, i + 1))
        {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Skip this attribute and any further attributes on the same item.
        let mut j = skip_attr(tokens, i + 1);
        loop {
            if j + 1 < tokens.len() && tokens[j].is_punct("#") && tokens[j + 1].is_punct("[") {
                j = skip_attr(tokens, j + 1);
            } else {
                break;
            }
        }
        // Find the end of the item: matching `}` of the first `{`, or the
        // first `;` at depth 0 if it comes before any `{`.
        let mut depth = 0i32;
        let mut end = j;
        while end < tokens.len() {
            let t = &tokens[end];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_punct(";") && depth == 0 {
                break;
            }
            end += 1;
        }
        let end = end.min(tokens.len().saturating_sub(1));
        for m in mask.iter_mut().take(end + 1).skip(attr_start) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Given `tokens[open]` == `[` of an attribute, return the index just past
/// the matching `]`.
fn skip_attr(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct("[") {
            depth += 1;
        } else if tokens[i].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Does the attribute starting at `tokens[open]` (== `[`) mark test code?
fn attr_is_test(tokens: &[Tok], open: usize) -> bool {
    let close = skip_attr(tokens, open);
    let inner = &tokens[open + 1..close.saturating_sub(1).max(open + 1)];
    let Some(first) = inner.iter().find(|t| t.kind == TokKind::Ident) else {
        return false;
    };
    // `#[test]` or `#[cfg(test)]` / `#[cfg(all(test, ...))]`; deliberately
    // NOT `#[cfg_attr(test, ...)]`, whose item still exists in non-test
    // builds.
    if first.text == "test" {
        return true;
    }
    first.text == "cfg" && inner.iter().any(|t| t.is_ident("test"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_opaque() {
        let l = lex(r#"let x = "HashMap"; // HashMap in comment"#);
        assert!(!l.tokens.iter().any(|t| t.is_ident("HashMap")));
    }

    #[test]
    fn idents_and_floats() {
        let l = lex("let y = 0.5 + x.max(1) as f64;");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Float));
        assert!(l.tokens.iter().any(|t| t.is_ident("as")));
        let one = l
            .tokens
            .iter()
            .find(|t| t.text == "1")
            .map(|t| t.kind.clone());
        assert_eq!(one, Some(TokKind::Int));
    }

    #[test]
    fn range_is_not_float() {
        let l = lex("for i in 0..10 {}");
        assert!(l.tokens.iter().all(|t| t.kind != TokKind::Float));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\n'; }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn escape_parsing() {
        let l = lex("let x = 1; // cs-lint: allow(lossy-cast) — value bounded by k\nlet y = 2; // cs-lint: allow(float-eq)");
        assert_eq!(l.escapes.len(), 2);
        assert_eq!(l.escapes[0].slug, "lossy-cast");
        assert!(l.escapes[0].has_reason);
        assert_eq!(l.escapes[1].line, 2);
        assert!(!l.escapes[1].has_reason);
    }

    #[test]
    fn cfg_test_region() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let l = lex(src);
        let mask = test_mask(&l.tokens);
        let unwrap_ix = l
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(mask[unwrap_ix]);
        let c_ix = l
            .tokens
            .iter()
            .position(|t| t.is_ident("c"))
            .expect("c token");
        assert!(!mask[c_ix]);
    }

    #[test]
    fn raw_strings() {
        let l = lex(r##"let s = r#"HashMap "quoted" inside"#; let t = 5;"##);
        assert!(!l.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(l.tokens.iter().any(|t| t.text == "5"));
    }

    #[test]
    fn nested_block_comment() {
        let l = lex("/* outer /* inner */ still comment */ let z = 3;");
        assert!(l.tokens.iter().any(|t| t.text == "3"));
        assert!(!l.tokens.iter().any(|t| t.is_ident("inner")));
    }
}
