//! SARIF 2.1.0 output (`--format sarif`).
//!
//! Minimal, static-schema serialization: one run, one driver
//! (`cs-lint`), every [`RuleId`] registered as a reportingDescriptor
//! (id = short id, name = slug, fullDescription = the `--explain`
//! rationale), one result per finding with a physical location. GitHub's
//! SARIF upload turns these into inline PR annotations.

use crate::json_escape;
use crate::rules::{Finding, RuleId};

/// Render findings as a SARIF 2.1.0 document.
pub fn to_sarif(findings: &[Finding], deny: bool) -> String {
    let level = if deny { "error" } else { "warning" };
    let mut s = String::from(
        "{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"cs-lint\",\n          \"informationUri\": \"DESIGN.md\",\n          \"rules\": [",
    );
    for (i, r) in RuleId::ALL.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"name\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \"fullDescription\": {{\"text\": \"{}\"}}}}",
            r.id(),
            json_escape(r.slug()),
            json_escape(r.summary()),
            json_escape(r.explain())
        ));
    }
    s.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"level\": \"{level}\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            f.rule.id(),
            json_escape(&f.message),
            json_escape(&f.file),
            f.line.max(1)
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n      ");
    }
    s.push_str("]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Json;

    #[test]
    fn sarif_is_valid_json_with_all_rules_and_results() {
        let findings = vec![Finding {
            file: "crates/proto/src/a.rs".to_string(),
            line: 7,
            rule: RuleId::R1,
            message: "quote \" and backslash \\".to_string(),
        }];
        let doc = to_sarif(&findings, true);
        let v = Json::parse(&doc).unwrap();
        let runs = v
            .as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == "runs").map(|(_, v)| v))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(runs.len(), 1);
        let txt = doc.as_str();
        assert!(txt.contains("\"version\": \"2.1.0\""));
        assert!(txt.contains("\"ruleId\": \"R1\""));
        assert!(txt.contains("\"level\": \"error\""));
        assert!(txt.contains("\"startLine\": 7"));
        for r in RuleId::ALL {
            assert!(txt.contains(&format!("\"id\": \"{}\"", r.id())));
        }
    }

    #[test]
    fn empty_findings_still_valid() {
        let doc = to_sarif(&[], false);
        assert!(Json::parse(&doc).is_ok());
        assert!(doc.contains("\"results\": []"));
    }
}
