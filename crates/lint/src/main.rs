//! `cs-lint` CLI: lint the workspace, print findings, gate CI.
//!
//! ```text
//! cs-lint [ROOT] [--format text|json] [--deny] [--list-rules]
//! ```
//!
//! Exit status is 0 unless `--deny` is given and findings exist (or the
//! workspace cannot be read). `ROOT` defaults to the nearest ancestor of
//! the current directory containing `crates/` (so both `cargo run -p
//! cs-lint` from the root and invocations from a crate dir work).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use cs_lint::{lint_workspace, to_json, Config, RuleId};

struct Args {
    root: Option<PathBuf>,
    json: bool,
    deny: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        deny: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => {
                    return Err(format!(
                        "--format expects `text` or `json`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--help" | "-h" => {
                println!(
                    "cs-lint [ROOT] [--format text|json] [--deny] [--list-rules]\n\
                     Workspace determinism & protocol-safety lints; see DESIGN.md §7."
                );
                std::process::exit(0);
            }
            _ if a.starts_with('-') => return Err(format!("unknown flag {a}")),
            _ => args.root = Some(PathBuf::from(a)),
        }
    }
    Ok(args)
}

/// Find the workspace root: walk up from cwd until a `crates/` dir shows up.
fn discover_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        if dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no ancestor directory contains crates/; pass ROOT explicitly".to_string());
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        println!("id  slug                    scope");
        println!(
            "D1  det-collections         deterministic crates (proto, sim, core, net, workload)"
        );
        println!("D2  ambient-entropy         all crates except crates/sim/src/rng.rs");
        println!("C1  float-eq                all crates");
        println!("C2  lossy-cast              proto, model");
        println!("C3  panic-in-lib            library crates (all but cli, bench)");
        println!("S1  forbid-unsafe           every crate root (src/lib.rs, src/main.rs)");
        println!("M1  file-size               deterministic crates, files > 800 lines");
        println!("E1  escape-missing-reason   escape comments themselves");
        println!("E2  escape-unknown-rule     escape comments themselves");
        return ExitCode::SUCCESS;
    }

    let root = match args.root.map(Ok).unwrap_or_else(discover_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let findings = match lint_workspace(&root, &Config::default()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        print!("{}", to_json(&findings));
    } else {
        let severity = if args.deny { "error" } else { "warning" };
        for f in &findings {
            println!(
                "{}:{}: {severity}[{}]: {} ({})",
                f.file,
                f.line,
                f.rule.id(),
                f.message,
                f.rule.slug()
            );
        }
        let escapable = findings
            .iter()
            .filter(|f| !matches!(f.rule, RuleId::E1 | RuleId::E2))
            .count();
        eprintln!(
            "cs-lint: {} finding(s) ({} rule, {} escape-syntax) in {}",
            findings.len(),
            escapable,
            findings.len() - escapable,
            root.display()
        );
    }

    if args.deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
