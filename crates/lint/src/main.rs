//! `cs-lint` CLI: lint the workspace, print findings, gate CI.
//!
//! ```text
//! cs-lint [ROOT] [--format text|json|sarif] [--deny]
//!         [--baseline PATH | --no-baseline] [--write-baseline PATH]
//!         [--list-rules] [--explain RULE]
//! ```
//!
//! Exit status is 0 unless `--deny` is given and non-baselined findings
//! exist (or the workspace cannot be read). `ROOT` defaults to the
//! nearest ancestor of the current directory containing `crates/` (so
//! both `cargo run -p cs-lint` from the root and invocations from a
//! crate dir work). When `<ROOT>/lint-baseline.json` exists it is
//! applied automatically; `--no-baseline` shows the raw finding set.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use cs_lint::baseline::Baseline;
use cs_lint::sarif::to_sarif;
use cs_lint::{explain_text, help_text, lint_workspace, list_rules_text, to_json, Config, RuleId};

enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    root: Option<PathBuf>,
    format: Format,
    deny: bool,
    list_rules: bool,
    explain: Option<String>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        deny: false,
        list_rules: false,
        explain: None,
        baseline: None,
        no_baseline: false,
        write_baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--no-baseline" => args.no_baseline = true,
            "--explain" => match it.next() {
                Some(r) => args.explain = Some(r),
                None => return Err("--explain expects a rule id or slug".to_string()),
            },
            "--baseline" => match it.next() {
                Some(p) => args.baseline = Some(PathBuf::from(p)),
                None => return Err("--baseline expects a path".to_string()),
            },
            "--write-baseline" => match it.next() {
                Some(p) => args.write_baseline = Some(PathBuf::from(p)),
                None => return Err("--write-baseline expects a path".to_string()),
            },
            "--format" => match it.next().as_deref() {
                Some("json") => args.format = Format::Json,
                Some("text") => args.format = Format::Text,
                Some("sarif") => args.format = Format::Sarif,
                other => {
                    return Err(format!(
                        "--format expects `text`, `json`, or `sarif`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--help" | "-h" => {
                print!("{}", help_text());
                std::process::exit(0);
            }
            _ if a.starts_with('-') => return Err(format!("unknown flag {a}")),
            _ => args.root = Some(PathBuf::from(a)),
        }
    }
    if args.no_baseline && args.baseline.is_some() {
        return Err("--baseline and --no-baseline are mutually exclusive".to_string());
    }
    Ok(args)
}

/// Find the workspace root: walk up from cwd until a `crates/` dir shows up.
fn discover_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        if dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no ancestor directory contains crates/; pass ROOT explicitly".to_string());
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        print!("{}", list_rules_text());
        return ExitCode::SUCCESS;
    }

    if let Some(name) = &args.explain {
        return match explain_text(name) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "cs-lint: unknown rule `{name}`; known: {}",
                    RuleId::ALL
                        .iter()
                        .map(|r| format!("{} ({})", r.id(), r.slug()))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    let root = match args.root.map(Ok).unwrap_or_else(discover_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let findings = match lint_workspace(&root, &Config::default()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // `--write-baseline` records the *raw* finding set and exits.
    if let Some(path) = &args.write_baseline {
        let bl = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(path, bl.to_json()) {
            eprintln!("cs-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "cs-lint: wrote {} entr{} to {}",
            bl.entries.len(),
            if bl.entries.len() == 1 { "y" } else { "ies" },
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    // Apply the baseline: explicit path, or <root>/lint-baseline.json when
    // present. An explicitly passed baseline must exist and parse.
    let mut stale: Vec<String> = Vec::new();
    let findings = if args.no_baseline {
        findings
    } else {
        let (path, required) = match &args.baseline {
            Some(p) => (p.clone(), true),
            None => (root.join("lint-baseline.json"), false),
        };
        match std::fs::read_to_string(&path) {
            Ok(src) => match Baseline::parse(&src) {
                Ok(bl) => {
                    let (kept, warn) = bl.apply(findings);
                    stale = warn;
                    kept
                }
                Err(e) => {
                    eprintln!("cs-lint: {} is invalid: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) if required => {
                eprintln!("cs-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
            Err(_) => findings,
        }
    };

    match args.format {
        Format::Json => print!("{}", to_json(&findings)),
        Format::Sarif => print!("{}", to_sarif(&findings, args.deny)),
        Format::Text => {
            let severity = if args.deny { "error" } else { "warning" };
            for f in &findings {
                println!(
                    "{}:{}: {severity}[{}]: {} ({})",
                    f.file,
                    f.line,
                    f.rule.id(),
                    f.message,
                    f.rule.slug()
                );
            }
            let escapable = findings
                .iter()
                .filter(|f| !matches!(f.rule, RuleId::E1 | RuleId::E2))
                .count();
            eprintln!(
                "cs-lint: {} finding(s) ({} rule, {} escape-syntax) in {}",
                findings.len(),
                escapable,
                findings.len() - escapable,
                root.display()
            );
        }
    }
    for w in &stale {
        eprintln!("cs-lint: warning: {w}");
    }

    if args.deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
