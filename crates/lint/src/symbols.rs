//! Cross-file symbol tables.
//!
//! [`WorkspaceIndex`] is built once per lint run from every non-test
//! `.rs` file under `crates/`: each file is lexed, test-masked, and
//! item-parsed ([`parse`]), then crate-level facts the
//! cross-file rules need are extracted:
//!
//! * **manager-owned state** — `pub(super)` fields declared in a
//!   `src/<module>/state.rs` file, keyed by the owning module (P1);
//! * **named RNG streams** — the `const` ids declared in the `streams`
//!   module of the sanctioned entropy source, `crates/sim/src/rng.rs`
//!   (R1);
//! * **event alphabets** — an `enum Event`-style item co-located with a
//!   `kind_class` dense-index table, the `World::handle` dispatch match,
//!   and every non-test `KindClassify` impl in the workspace (X1).

use crate::lexer::{self, Lexed};
use crate::parse::{self, Item, ItemKind, Vis};
use crate::rules::Config;

/// One parsed, masked, indexed source file.
pub struct FileIndex {
    /// Crate directory name under `crates/`.
    pub crate_name: String,
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Path relative to the crate directory (`src/stream/state.rs`).
    pub crate_rel: String,
    /// True for `src/lib.rs` / `src/main.rs`.
    pub is_crate_root: bool,
    /// Lexer output (tokens + allow-escapes).
    pub lexed: Lexed,
    /// Test-region bitmap parallel to `lexed.tokens`.
    pub mask: Vec<bool>,
    /// Recovered item forest.
    pub items: Vec<Item>,
    /// Total source lines.
    pub line_count: u32,
}

impl FileIndex {
    /// Lex, mask, and item-parse one source file.
    pub fn build(
        crate_name: &str,
        rel_path: &str,
        crate_rel: &str,
        is_crate_root: bool,
        src: &str,
    ) -> Self {
        let lexed = lexer::lex(src);
        let mask = lexer::test_mask(&lexed.tokens);
        let items = parse::parse_items(&lexed.tokens);
        FileIndex {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            crate_rel: crate_rel.to_string(),
            is_crate_root,
            line_count: u32::try_from(src.lines().count()).unwrap_or(u32::MAX),
            lexed,
            mask,
            items,
        }
    }

    /// Is the token at `ix` inside a test region?
    pub fn masked(&self, ix: usize) -> bool {
        self.mask.get(ix).copied().unwrap_or(false)
    }

    /// Is the item (by its first body token, or declaration line fallback)
    /// inside a test region? Items recovered from `#[cfg(test)]` modules
    /// are invisible to cross-file rules.
    pub fn item_masked(&self, item: &Item) -> bool {
        match item.body {
            Some((s, _)) => self.masked(s),
            None => false,
        }
    }
}

/// A `pub(super)` field owned by a manager module.
#[derive(Clone, Debug)]
pub struct OwnedField {
    /// Owning module name (`partnership`, `stream`, …): the `<m>` of
    /// `src/<m>/state.rs`.
    pub owner: String,
    /// Field name.
    pub field: String,
    /// Struct the field belongs to.
    pub in_struct: String,
    /// Declaring file (workspace-relative).
    pub decl_file: String,
    /// Declaration line.
    pub decl_line: u32,
}

/// One arm of a dense-index kind table: `Variant => (index, "name")`.
#[derive(Clone, Debug)]
pub struct KindArm {
    /// Enum variant the arm matches.
    pub variant: String,
    /// Dense index.
    pub index: Option<u32>,
    /// Kind name string.
    pub name: Option<String>,
    /// Source line of the arm.
    pub line: u32,
}

/// An event alphabet: the enum, its kind table, and its dispatch match.
#[derive(Clone, Debug)]
pub struct EventAlphabet {
    /// Crate that declares the alphabet.
    pub crate_name: String,
    /// Declaring file (workspace-relative).
    pub file: String,
    /// Enum name (`Event`).
    pub enum_name: String,
    /// Enum declaration line.
    pub enum_line: u32,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// The `kind_class` dense-index table, if a fn of that name with a
    /// match over the enum exists in the same file.
    pub kind_table: Vec<KindArm>,
    /// Line of the `kind_class` fn (0 when absent).
    pub kind_fn_line: u32,
    /// Variants matched by the `World::handle` dispatch in the same file.
    pub dispatch_arms: Vec<KindArm>,
    /// Line of the `handle` fn (0 when absent).
    pub dispatch_fn_line: u32,
    /// True when the dispatch match carries a catch-all arm.
    pub dispatch_has_wildcard: bool,
}

/// A non-test `impl KindClassify<E> for T` with an inline kind table
/// (delegating impls have an empty `arms`).
#[derive(Clone, Debug)]
pub struct ClassifierImpl {
    /// Crate containing the impl.
    pub crate_name: String,
    /// File containing the impl (workspace-relative).
    pub file: String,
    /// The event type `E`.
    pub event_type: String,
    /// The implementing type `T`.
    pub for_type: String,
    /// Impl block line.
    pub line: u32,
    /// Inline `Variant => (index, "name")` arms, if the impl enumerates
    /// kinds itself rather than delegating.
    pub arms: Vec<KindArm>,
}

/// All files of one crate plus the crate-level facts extracted from them.
pub struct CrateIndex {
    /// Crate directory name.
    pub name: String,
    /// Indexed files, sorted by path.
    pub files: Vec<FileIndex>,
    /// Manager-owned `pub(super)` state fields (P1).
    pub owned_fields: Vec<OwnedField>,
}

/// The workspace-wide symbol table.
pub struct WorkspaceIndex {
    /// Per-crate indices, sorted by crate name.
    pub crates: Vec<CrateIndex>,
    /// Stream ids declared in the sanctioned RNG module's `streams` mod.
    pub stream_consts: Vec<String>,
    /// Whether the sanctioned RNG module was seen at all (fixture
    /// workspaces without one skip the unknown-stream check).
    pub has_stream_module: bool,
    /// Event alphabets (X1 anchors) across all crates.
    pub alphabets: Vec<EventAlphabet>,
    /// `KindClassify` impls across all crates.
    pub classifiers: Vec<ClassifierImpl>,
}

impl WorkspaceIndex {
    /// Assemble the workspace index from per-file indices.
    pub fn build(mut files: Vec<FileIndex>, cfg: &Config) -> Self {
        files.sort_by(|a, b| (&a.crate_name, &a.rel_path).cmp(&(&b.crate_name, &b.rel_path)));
        let mut stream_consts = Vec::new();
        let mut has_stream_module = false;
        let mut alphabets = Vec::new();
        let mut classifiers = Vec::new();

        for f in &files {
            if f.rel_path == cfg.stream_module {
                has_stream_module = true;
                stream_consts = extract_stream_consts(f);
            }
            alphabets.extend(extract_alphabet(f));
            classifiers.extend(extract_classifiers(f));
        }

        let mut crates: Vec<CrateIndex> = Vec::new();
        for f in files {
            match crates.last_mut() {
                Some(c) if c.name == f.crate_name => c.files.push(f),
                _ => crates.push(CrateIndex {
                    name: f.crate_name.clone(),
                    files: vec![f],
                    owned_fields: Vec::new(),
                }),
            }
        }
        for c in &mut crates {
            c.owned_fields = extract_owned_fields(&c.files);
        }

        WorkspaceIndex {
            crates,
            stream_consts,
            has_stream_module,
            alphabets,
            classifiers,
        }
    }
}

/// `pub const NAME: u64 = …;` items inside `mod streams { … }`.
fn extract_stream_consts(f: &FileIndex) -> Vec<String> {
    let mut out = Vec::new();
    for item in parse::all_items(&f.items) {
        if item.kind == ItemKind::Mod && item.name == "streams" {
            for c in &item.children {
                if c.kind == ItemKind::Const && !c.name.is_empty() {
                    out.push(c.name.clone());
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The owning module of a `state.rs` file: `src/<m>/state.rs` → `<m>`.
fn state_owner(crate_rel: &str) -> Option<&str> {
    let rest = crate_rel.strip_prefix("src/")?;
    let (owner, leaf) = rest.rsplit_once('/')?;
    (leaf == "state.rs" && !owner.is_empty() && !owner.contains('/')).then_some(owner)
}

/// Collect `pub(super)` struct fields from every `src/<m>/state.rs`.
fn extract_owned_fields(files: &[FileIndex]) -> Vec<OwnedField> {
    let mut out = Vec::new();
    for f in files {
        let Some(owner) = state_owner(&f.crate_rel) else {
            continue;
        };
        for item in parse::all_items(&f.items) {
            if item.kind != ItemKind::Struct || f.item_masked(item) {
                continue;
            }
            for field in &item.fields {
                if field.vis == Vis::PubSuper {
                    out.push(OwnedField {
                        owner: owner.to_string(),
                        field: field.name.clone(),
                        in_struct: item.name.clone(),
                        decl_file: f.rel_path.clone(),
                        decl_line: field.line,
                    });
                }
            }
        }
    }
    out
}

/// Arms of the first match inside fn `item`, interpreted against
/// `enum_name`.
fn match_arms_of(f: &FileIndex, item: &Item, enum_name: &str) -> (Vec<KindArm>, bool) {
    let toks = &f.lexed.tokens;
    let Some((bs, be)) = item.body else {
        return (Vec::new(), false);
    };
    let Some(arms) = parse::first_match_arms(toks, (bs, be + 1)) else {
        return (Vec::new(), false);
    };
    let mut out = Vec::new();
    let mut wildcard = false;
    for a in arms {
        if parse::pat_is_wildcard(toks, a.pat) {
            wildcard = true;
            continue;
        }
        let Some((head, variant)) = parse::pat_variant(toks, a.pat) else {
            continue;
        };
        if head != enum_name && head != "Self" {
            continue;
        }
        let (index, name) = match parse::body_index_name(toks, a.body) {
            Some((i, n)) => (Some(i), Some(n)),
            None => (None, None),
        };
        out.push(KindArm {
            variant,
            index,
            name,
            line: a.line,
        });
    }
    (out, wildcard)
}

/// Recognize an event alphabet in `f`: an enum named `Event` (non-test)
/// plus, in the same file, a `kind_class` fn and a dispatch fn — either
/// `handle` in an `impl World for …` block, or a `route` fn when the
/// world splits target resolution (`handle`) from manager dispatch.
/// When both exist, the one whose body actually matches on `Event`
/// variants is the dispatch anchor.
fn extract_alphabet(f: &FileIndex) -> Option<EventAlphabet> {
    let items = parse::all_items(&f.items);
    let en = items.iter().find(|i| {
        i.kind == ItemKind::Enum && i.name == "Event" && !i.fields.is_empty() && !f.item_masked(i)
    })?;
    let kind_fn = items
        .iter()
        .find(|i| i.kind == ItemKind::Fn && i.name == "kind_class" && !f.item_masked(i));
    // Only anchor when a kind table exists: a plain `enum Event` in some
    // unrelated crate is not an alphabet.
    let kind_fn = kind_fn?;
    let (kind_table, _) = match_arms_of(f, kind_fn, &en.name);
    let (dispatch_fn, dispatch_arms, dispatch_has_wildcard) = ["route", "handle"]
        .iter()
        .filter_map(|name| {
            let fun = items
                .iter()
                .find(|i| i.kind == ItemKind::Fn && i.name == *name && !f.item_masked(i))?;
            let (arms, wildcard) = match_arms_of(f, fun, &en.name);
            Some((Some(*fun), arms, wildcard))
        })
        .max_by_key(|(_, arms, _)| arms.len())
        .unwrap_or((None, Vec::new(), false));
    Some(EventAlphabet {
        crate_name: f.crate_name.clone(),
        file: f.rel_path.clone(),
        enum_name: en.name.clone(),
        enum_line: en.line,
        variants: en.fields.iter().map(|v| v.name.clone()).collect(),
        kind_table,
        kind_fn_line: kind_fn.line,
        dispatch_arms,
        dispatch_fn_line: dispatch_fn.map(|h| h.line).unwrap_or(0),
        dispatch_has_wildcard,
    })
}

/// Every non-test `impl KindClassify<E> for T` in `f`, with inline arms
/// when the `class` fn enumerates kinds itself.
fn extract_classifiers(f: &FileIndex) -> Vec<ClassifierImpl> {
    let mut out = Vec::new();
    for item in parse::all_items(&f.items) {
        if item.kind != ItemKind::Impl
            || item.trait_name.as_deref() != Some("KindClassify")
            || f.item_masked(item)
        {
            continue;
        }
        let Some(event_type) = item.trait_arg.clone() else {
            continue;
        };
        let arms = item
            .children
            .iter()
            .find(|c| c.kind == ItemKind::Fn && c.name == "class")
            .map(|class_fn| match_arms_of(f, class_fn, &event_type).0)
            .unwrap_or_default();
        out.push(ClassifierImpl {
            crate_name: f.crate_name.clone(),
            file: f.rel_path.clone(),
            event_type,
            for_type: item.name.clone(),
            line: item.line,
            arms,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_name: &str, crate_rel: &str, src: &str) -> FileIndex {
        FileIndex::build(
            crate_name,
            &format!("crates/{crate_name}/{crate_rel}"),
            crate_rel,
            false,
            src,
        )
    }

    #[test]
    fn owned_fields_come_from_state_modules() {
        let f = file(
            "proto",
            "src/stream/state.rs",
            r#"
            pub struct StreamState {
                pub(super) parents: Vec<Option<NodeId>>,
                children: Vec<(NodeId, u32)>,
                pub(super) next_play: u64,
            }
            "#,
        );
        let owned = extract_owned_fields(&[f]);
        let names: Vec<(&str, &str)> = owned
            .iter()
            .map(|o| (o.owner.as_str(), o.field.as_str()))
            .collect();
        assert_eq!(names, vec![("stream", "parents"), ("stream", "next_play")]);
    }

    #[test]
    fn non_state_files_contribute_no_owned_fields() {
        let f = file(
            "proto",
            "src/stream.rs",
            "pub struct X { pub(super) y: u32 }",
        );
        assert!(extract_owned_fields(&[f]).is_empty());
    }

    #[test]
    fn stream_consts_from_streams_module() {
        let f = file(
            "sim",
            "src/rng.rs",
            r#"
            pub mod streams {
                pub const ARRIVALS: u64 = 1;
                pub const FREERIDER: u64 = 9;
            }
            "#,
        );
        assert_eq!(extract_stream_consts(&f), vec!["ARRIVALS", "FREERIDER"]);
    }

    #[test]
    fn alphabet_extraction_reads_kind_table_and_dispatch() {
        let f = file(
            "proto",
            "src/world.rs",
            r#"
            pub enum Event { A(u32), B, C { x: u8 } }
            impl Event {
                pub fn kind_class(&self) -> (u8, &'static str) {
                    match self {
                        Event::A(_) => (0, "a"),
                        Event::B => (1, "b"),
                        Event::C { .. } => (2, "c"),
                    }
                }
            }
            impl World for W {
                fn handle(&mut self, ctx: &mut Ctx<'_, Event>, event: Event) {
                    match event {
                        Event::A(x) => f(x),
                        Event::B => {}
                        Event::C { .. } => g(),
                    }
                }
            }
            "#,
        );
        let al = extract_alphabet(&f).expect("alphabet");
        assert_eq!(al.variants, vec!["A", "B", "C"]);
        assert_eq!(al.kind_table.len(), 3);
        assert_eq!(al.kind_table[1].index, Some(1));
        assert_eq!(al.kind_table[1].name.as_deref(), Some("b"));
        assert_eq!(al.dispatch_arms.len(), 3);
        assert!(!al.dispatch_has_wildcard);
    }

    #[test]
    fn classifier_impls_are_collected() {
        let f = file(
            "telemetry",
            "src/obs.rs",
            r#"
            impl KindClassify<Event> for StaleKinds {
                fn class(event: &Event) -> (u8, &'static str) {
                    match event {
                        Event::A(_) => (0, "a"),
                        Event::B => (1, "bee"),
                    }
                }
            }
            impl KindClassify<Event> for Delegating {
                fn class(event: &Event) -> (u8, &'static str) { event.kind_class() }
            }
            "#,
        );
        let cls = extract_classifiers(&f);
        assert_eq!(cls.len(), 2);
        assert_eq!(cls[0].for_type, "StaleKinds");
        assert_eq!(cls[0].arms.len(), 2);
        assert_eq!(cls[0].arms[1].name.as_deref(), Some("bee"));
        assert!(cls[1].arms.is_empty());
    }

    #[test]
    fn test_masked_impls_are_ignored() {
        let f = file(
            "telemetry",
            "src/obs.rs",
            r#"
            #[cfg(test)]
            mod tests {
                impl KindClassify<Tick> for TickKinds {
                    fn class(_: &Tick) -> (u8, &'static str) { (0, "tick") }
                }
            }
            "#,
        );
        assert!(extract_classifiers(&f).is_empty());
    }
}
