//! Property tests for the committed-baseline machinery: serialization
//! round-trips bit-exactly (including messages with quotes, backslashes,
//! newlines, and non-ASCII), and a baseline suppresses *exactly* its
//! recorded findings — no more, no fewer.

use cs_lint::baseline::Baseline;
use cs_lint::{Finding, RuleId};
use proptest::prelude::*;

/// A message long enough that the generated strategies (≤ 24 chars)
/// can never collide with it.
const FRESH_MSG: &str = "this finding is definitely not recorded in the baseline";

fn mk(raw: &[(String, u32, usize, String)]) -> Vec<Finding> {
    raw.iter()
        .map(|(file, line, rule_ix, msg)| Finding {
            file: format!("crates/{file}.rs"),
            line: *line,
            rule: RuleId::ALL[rule_ix % RuleId::ALL.len()],
            message: msg.clone(),
        })
        .collect()
}

proptest! {
    #[test]
    fn baseline_round_trips_and_suppresses_exactly(
        raw in proptest::collection::vec((".{0,8}", 1u32..400, 0usize..32, ".{0,24}"), 0..24),
    ) {
        let findings = mk(&raw);
        let bl = Baseline::from_findings(&findings);

        // Serialization round-trips through the hand-rolled JSON reader.
        let reparsed = Baseline::parse(&bl.to_json());
        prop_assert!(reparsed.is_ok(), "parse failed: {:?}", reparsed.err());
        prop_assert_eq!(&reparsed.unwrap_or_default(), &bl);

        // Entry counts total the finding count.
        let total: u32 = bl.entries.iter().map(|e| e.count).sum();
        prop_assert_eq!(total as usize, findings.len());

        // The recorded findings are fully suppressed, with no stale noise.
        let (kept, warn) = bl.apply(findings.clone());
        prop_assert!(kept.is_empty(), "leaked: {kept:?}");
        prop_assert!(warn.is_empty(), "stale: {warn:?}");

        // One *new* finding is not suppressed.
        let mut more = findings.clone();
        more.push(Finding {
            file: "crates/fresh.rs".to_string(),
            line: 1,
            rule: RuleId::D1,
            message: FRESH_MSG.to_string(),
        });
        let (kept, _) = bl.apply(more);
        prop_assert_eq!(kept.len(), 1);
        prop_assert_eq!(kept[0].message.as_str(), FRESH_MSG);

        // Dropping one recorded finding surfaces exactly one stale unit.
        if !findings.is_empty() {
            let mut fewer = findings.clone();
            fewer.pop();
            let (kept, warn) = bl.apply(fewer);
            prop_assert!(kept.is_empty());
            prop_assert_eq!(warn.len(), 1);
        }
    }
}
