// Fixture: A1 arena-access. Linted as crate `proto` (deterministic),
// at a path that is NOT the world.rs/arena.rs accessor seam.

fn raw_subscripts(peers: &[u32], arena: &[u32]) -> u32 {
    let a = peers[0];
    let b = arena[1];
    a + b
}

fn raw_gets(peers: &[u32], arena: &mut Vec<u32>) -> Option<u32> {
    let x = peers.get(0)?;
    let y = arena.get_mut(1)?;
    Some(*x + *y)
}

fn sanctioned_api(world: &World) -> usize {
    // Method calls on the accessor seam are fine: `peers` here is
    // followed by `(`, not `[` / `.get(`.
    world.peers().count()
}

fn escaped(peers: &[u32]) -> u32 {
    // cs-lint: allow(arena-access) — index proven in-bounds by caller invariant
    peers[2]
}
