//! Fixture: stream-manager state block (mirrors the PR 4 split).

pub struct StreamState {
    pub(super) next_play: u64,
    pub(super) parents: Vec<u32>,
    children: Vec<u32>,
}
