//! Fixture: the owning manager module may write its own state.

pub fn advance(s: &mut super::state::StreamState) {
    s.next_play += 1;
    s.parents[0] = 7;
}
