//! Fixture: a foreign module reading (fine) and writing (P1) stream state.

pub fn tick(p: &mut Peer, i: usize) {
    let seen = p.stream.next_play;
    p.stream.next_play = seen + 1;
    p.stream.parents[i] = 0;
    // cs-lint: allow(shard-safety) — fixture: sanctioned bulk reset during teardown
    p.stream.next_play = 0;
}
