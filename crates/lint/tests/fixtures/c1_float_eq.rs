// Fixture: C1 float-eq.
fn compare(x: f64, y: f64, n: u64) -> bool {
    let a = x == 0.0;
    let b = 0.5 != y;
    let c = x as f64 == y;
    let d = x == -1.5;
    let int_eq_is_fine = n == 0;
    let threshold_is_fine = (x - y).abs() < 1e-9;
    a && b && c && d && int_eq_is_fine && threshold_is_fine
}
