// Fixture: allow-escape handling. Linted as crate `proto`.
fn escapes(n: u64, x: f64) -> u32 {
    let trailing = n as u32; // cs-lint: allow(lossy-cast) — n is always < 2^16 here
    // cs-lint: allow(float-eq) — exact sentinel comparison against the initializer
    let above = x == 0.0;
    let no_reason = n as u32; // cs-lint: allow(lossy-cast)
    let unknown = n as u32; // cs-lint: allow(no-such-rule) — misspelled
    trailing + no_reason + unknown + u32::from(above)
}
