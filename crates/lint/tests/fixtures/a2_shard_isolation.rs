// Fixture: A2 shard-isolation. Linted as crate `proto` (deterministic),
// at a path that is NOT the world.rs/shard.rs/arena.rs router seam.

fn raw_partition_access(shards: &mut [u32]) -> u32 {
    let a = shards[0];
    let (x, y) = shard_pair_mut(shards, 0, 1);
    a + *x + *y
}

fn sanctioned_api(world: &World, map: &ShardMap) -> usize {
    // Method calls are fine: `shards` here is followed by `(`, not `[`,
    // and `shard_of` is the map's public API.
    world.shards() + map.shard_of(NodeId(3))
}

fn escaped(shards: &mut [u32]) -> u32 {
    // cs-lint: allow(shard-isolation) — index is this event's owner shard, held exclusively for the epoch
    shards[2]
}
