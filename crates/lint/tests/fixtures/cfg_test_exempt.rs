// Fixture: #[cfg(test)] exemption. Linted as crate `proto`.
use std::collections::BTreeMap;

fn library_code(v: Vec<u32>) -> u32 {
    v.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u64);
        assert!(m.get(&1).copied().unwrap() == 2);
        let x: f64 = 0.0;
        assert!(x == 0.0);
    }
}

#[test]
fn bare_test_attr_is_exempt() {
    let v: Vec<u32> = Vec::new();
    let _ = v.first().copied().unwrap_or_else(|| panic!("empty"));
}

fn after_the_test_mod(v: Vec<u32>) -> u32 {
    v.first().copied().expect("non-empty")
}
