// Fixture: D1 det-collections. Linted as crate `proto` (deterministic).
use std::collections::HashMap;
use std::collections::BTreeMap;

struct State {
    index: HashMap<u32, u64>,
    ordered: BTreeMap<u32, u64>,
}

fn build() -> std::collections::HashSet<u32> {
    // The word HashMap in a comment is fine, and so is "HashMap" in a string.
    let _label = "HashMap";
    std::collections::HashSet::new()
}
