//! Fixture: cross-crate KindClassify impls — one drifted (X1), one
//! escaped, one delegating (never checked).

impl KindClassify<Event> for DriftedKinds {
    fn class(event: &Event) -> (u8, &'static str) {
        match event {
            Event::Arrive(_) => (0, "arrive"),
            Event::Depart(_) => (1, "leave"),
            Event::Tick => (2, "tick"),
        }
    }
}

// cs-lint: allow(dispatch-exhaustive) — fixture: legacy impl kept for a migration window
impl KindClassify<Event> for PartialKinds {
    fn class(event: &Event) -> (u8, &'static str) {
        match event {
            Event::Arrive(_) => (0, "arrive"),
            Event::Depart(_) => (1, "depart"),
        }
    }
}

impl KindClassify<Event> for DelegatingKinds {
    fn class(event: &Event) -> (u8, &'static str) {
        event.kind_class()
    }
}
