//! Fixture: event alphabet whose dispatch match lost an arm (X1).

pub enum Event {
    Arrive(u32),
    Depart(u32),
    Tick,
}

impl Event {
    pub fn kind_class(&self) -> (u8, &'static str) {
        match self {
            Event::Arrive(_) => (0, "arrive"),
            Event::Depart(_) => (1, "depart"),
            Event::Tick => (2, "tick"),
        }
    }
}

impl World for CsWorld {
    fn handle(&mut self, ctx: &mut Ctx<'_, Event>, event: Event) {
        match event {
            Event::Arrive(id) => self.on_arrive(ctx, id),
            Event::Depart(id) => self.on_depart(ctx, id),
        }
    }
}
