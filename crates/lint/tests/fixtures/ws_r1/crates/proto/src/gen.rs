//! Fixture: raw RNG constructions in det-scope (R1 positives + escape).

pub fn make(seed: u64) {
    let a = Xoshiro256PlusPlus::new(seed);
    let b = Xoshiro256PlusPlus::stream(seed, LOCAL_STREAM);
    let c = Xoshiro256PlusPlus::stream(seed, streams::MISSING);
    let d = Xoshiro256PlusPlus::stream(seed, streams::ARRIVALS);
    // cs-lint: allow(rng-stream) — fixture: scratch generator for a local estimate
    let e = Xoshiro256PlusPlus::new(seed);
    keep(a, b, c, d, e);
}
