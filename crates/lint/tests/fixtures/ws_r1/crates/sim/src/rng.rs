//! Fixture: the sanctioned stream module (path matches
//! `Config::stream_module` relative to the fixture root).

pub mod streams {
    /// Workload arrival process.
    pub const ARRIVALS: u64 = 1;
    /// Gated free-rider stream.
    pub const FREERIDER: u64 = 9;
}
