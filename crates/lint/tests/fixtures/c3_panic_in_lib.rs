// Fixture: C3 panic-in-lib.
fn lookups(v: Vec<u32>, r: Result<u32, String>) -> u32 {
    let a = v.first().copied().unwrap();
    let b = r.expect("must be ok");
    if a > b {
        panic!("a exceeded b");
    }
    match a {
        0 => unreachable!(),
        _ => {}
    }
    let unwrap_or_is_fine = v.first().copied().unwrap_or(0);
    a + b + unwrap_or_is_fine
}
