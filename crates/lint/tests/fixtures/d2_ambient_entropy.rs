// Fixture: D2 ambient-entropy.
use std::time::Instant;

fn timing() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_micros()
}

fn wall_clock() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn entropy() -> f64 {
    let mut rng = rand::thread_rng();
    let _coin: bool = rand::random();
    0.5
}

fn seeded_is_fine(rng: &mut impl rand::Rng) -> u32 {
    rng.gen_range(0..10)
}
