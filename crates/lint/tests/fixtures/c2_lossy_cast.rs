// Fixture: C2 lossy-cast. Linted as crate `proto` (cast-audited).
fn casts(n: u64, len: usize, rate: f64) -> u64 {
    let a = n as u32;
    let b = 300 as u8;
    let c = 1.5 as u64;
    let d = rate.floor() as u64;
    let widening_is_fine = len as u64;
    let fitting_literal_is_fine = 255 as u8;
    let float_target_is_fine = n as f64;
    a as u64 + b as u64 + c + d + widening_is_fine + fitting_literal_is_fine as u64
        + float_target_is_fine as u64
}
