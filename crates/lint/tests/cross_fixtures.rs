//! Fixture mini-workspaces for the cross-file rule families. Each
//! `tests/fixtures/ws_*` directory is a tiny `crates/`-shaped tree that
//! goes through the same [`lint_workspace`] walk CI uses, covering a
//! positive and an escaped-negative case per rule.
//!
//! These are also the acceptance-criteria probes for the issue: a
//! deleted `world.rs` dispatch arm (`ws_x1`) and a raw RNG construction
//! in `crates/proto` (`ws_r1`) must be hard findings.

use std::path::PathBuf;

use cs_lint::{lint_workspace, Config, Finding};

fn hits(ws: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(ws);
    lint_workspace(&root, &Config::default()).expect("fixture workspace lints")
}

fn keyed(findings: &[Finding]) -> Vec<(&str, &str, u32)> {
    findings
        .iter()
        .map(|f| (f.rule.id(), f.file.as_str(), f.line))
        .collect()
}

#[test]
fn p1_fixture_flags_foreign_writes_and_honors_escape() {
    let found = hits("ws_p1");
    assert_eq!(
        keyed(&found),
        vec![
            ("P1", "crates/proto/src/world.rs", 5),
            ("P1", "crates/proto/src/world.rs", 6),
        ],
        "{found:?}"
    );
    assert!(found[0].message.contains("module `world`"));
    assert!(found[0].message.contains("`stream`-owned"));
    assert!(found[0].message.contains("StreamState.next_play"));
    assert!(found[1].message.contains("parents"));
}

#[test]
fn r1_fixture_flags_raw_rng_in_proto_and_honors_escape() {
    let found = hits("ws_r1");
    assert_eq!(
        keyed(&found),
        vec![
            ("R1", "crates/proto/src/gen.rs", 4),
            ("R1", "crates/proto/src/gen.rs", 5),
            ("R1", "crates/proto/src/gen.rs", 6),
        ],
        "{found:?}"
    );
    assert!(found[0].message.contains("named-stream API"));
    assert!(found[1].message.contains("LOCAL_STREAM"));
    assert!(found[2].message.contains("streams::MISSING"));
    assert!(
        found[2].message.contains("ARRIVALS") && found[2].message.contains("FREERIDER"),
        "unknown-stream message lists the known table: {}",
        found[2].message
    );
}

#[test]
fn x1_fixture_flags_deleted_dispatch_arm_and_drifted_classifier() {
    let found = hits("ws_x1");
    assert_eq!(
        keyed(&found),
        vec![
            ("X1", "crates/proto/src/world.rs", 20),
            ("X1", "crates/telemetry/src/kinds.rs", 8),
        ],
        "{found:?}"
    );
    assert!(
        found[0].message.contains("no arm for `Event::Tick`"),
        "{}",
        found[0].message
    );
    assert!(
        found[1].message.contains("\"leave\"") && found[1].message.contains("\"depart\""),
        "{}",
        found[1].message
    );
}
