//! Fixture-based self-tests: each known-bad snippet under `tests/fixtures/`
//! must produce exactly the expected `(rule, line)` hits — no more, no less.

use cs_lint::{lint_source, RuleId};

/// Lint a fixture and reduce the findings to a sorted `(rule-id, line)` list.
fn hits(crate_name: &str, is_crate_root: bool, src: &str) -> Vec<(&'static str, u32)> {
    let mut v: Vec<(&'static str, u32)> = lint_source(crate_name, "fixture.rs", is_crate_root, src)
        .into_iter()
        .map(|f| (f.rule.id(), f.line))
        .collect();
    v.sort();
    v
}

#[test]
fn d1_hash_collections_fires() {
    let src = include_str!("fixtures/d1_hash_collections.rs");
    assert_eq!(
        hits("proto", false, src),
        vec![("D1", 2), ("D1", 6), ("D1", 10), ("D1", 13)]
    );
}

#[test]
fn d1_is_scoped_to_deterministic_crates() {
    let src = include_str!("fixtures/d1_hash_collections.rs");
    // `analysis` is not in the deterministic-crate set, so D1 stays silent.
    assert_eq!(hits("analysis", false, src), vec![]);
}

#[test]
fn d2_ambient_entropy_fires() {
    let src = include_str!("fixtures/d2_ambient_entropy.rs");
    assert_eq!(
        hits("proto", false, src),
        vec![("D2", 5), ("D2", 9), ("D2", 10), ("D2", 14), ("D2", 15)]
    );
}

#[test]
fn d2_exempts_the_designated_rng_module() {
    let src = include_str!("fixtures/d2_ambient_entropy.rs");
    let findings = lint_source("sim", "crates/sim/src/rng.rs", false, src);
    assert!(
        findings.iter().all(|f| f.rule != RuleId::D2),
        "rng.rs is the sanctioned entropy boundary: {findings:?}"
    );
}

#[test]
fn c1_float_eq_fires() {
    let src = include_str!("fixtures/c1_float_eq.rs");
    assert_eq!(
        hits("proto", false, src),
        vec![("C1", 3), ("C1", 4), ("C1", 5), ("C1", 6)]
    );
}

#[test]
fn c2_lossy_cast_fires() {
    let src = include_str!("fixtures/c2_lossy_cast.rs");
    assert_eq!(
        hits("proto", false, src),
        vec![("C2", 3), ("C2", 4), ("C2", 5), ("C2", 6)]
    );
}

#[test]
fn c2_is_scoped_to_cast_audited_crates() {
    let src = include_str!("fixtures/c2_lossy_cast.rs");
    // `sim` is not cast-audited; the same snippet lints clean there.
    assert_eq!(hits("sim", false, src), vec![]);
}

#[test]
fn c3_panic_in_lib_fires() {
    let src = include_str!("fixtures/c3_panic_in_lib.rs");
    assert_eq!(
        hits("proto", false, src),
        vec![("C3", 3), ("C3", 4), ("C3", 6), ("C3", 9)]
    );
}

#[test]
fn c3_exempts_panic_tolerant_crates() {
    let src = include_str!("fixtures/c3_panic_in_lib.rs");
    // The CLI is allowed to panic on unrecoverable errors.
    assert_eq!(hits("cli", false, src), vec![]);
}

#[test]
fn s1_missing_forbid_fires_on_crate_roots_only() {
    let src = include_str!("fixtures/s1_missing_forbid.rs");
    assert_eq!(hits("proto", true, src), vec![("S1", 1)]);
    // Non-root modules are not required to carry the attribute.
    assert_eq!(hits("proto", false, src), vec![]);
}

#[test]
fn s1_present_forbid_is_clean() {
    let src = include_str!("fixtures/s1_has_forbid.rs");
    assert_eq!(hits("proto", true, src), vec![]);
}

/// A synthetic file of `lines` no-op lines (fixture files would need to
/// be >800 lines on disk, so M1 sources are generated instead).
fn long_source(lines: usize, first_line: &str) -> String {
    let mut s = String::from(first_line);
    s.push('\n');
    for _ in 1..lines {
        s.push_str("// filler\n");
    }
    s
}

#[test]
fn m1_file_size_fires_in_det_scope_only() {
    let src = long_source(801, "// big module");
    assert_eq!(hits("proto", false, &src), vec![("M1", 1)]);
    // At the limit exactly: clean.
    assert_eq!(hits("proto", false, &long_source(800, "// ok")), vec![]);
    // `analysis` is outside the deterministic scope.
    assert_eq!(hits("analysis", false, &src), vec![]);
}

#[test]
fn m1_is_escapable_on_line_one() {
    let src = long_source(
        801,
        "// cs-lint: allow(file-size) — generated table, one logical unit",
    );
    assert_eq!(hits("proto", false, &src), vec![]);
}

#[test]
fn a1_arena_access_fires() {
    let src = include_str!("fixtures/a1_arena_access.rs");
    // Raw subscripts (lines 5–6) and raw get/get_mut (11–12) fire; the
    // `world.peers()` method call does not; line 24 is escaped.
    assert_eq!(
        hits("proto", false, src),
        vec![("A1", 5), ("A1", 6), ("A1", 11), ("A1", 12)]
    );
}

#[test]
fn a1_exempts_the_accessor_seam_and_nondet_crates() {
    let src = include_str!("fixtures/a1_arena_access.rs");
    // world.rs and arena.rs ARE the accessor seam.
    for seam in ["crates/proto/src/world.rs", "crates/proto/src/arena.rs"] {
        let findings = lint_source("proto", seam, false, src);
        assert!(
            findings.iter().all(|f| f.rule != RuleId::A1),
            "{seam} is the sanctioned arena seam: {findings:?}"
        );
    }
    // `analysis` is outside the deterministic-crate scope.
    assert_eq!(hits("analysis", false, src), vec![]);
}

#[test]
fn a2_shard_isolation_fires() {
    let src = include_str!("fixtures/a2_shard_isolation.rs");
    // Raw subscript (line 5) and the pair-split call (line 6) fire; the
    // `world.shards()` / `map.shard_of(..)` calls do not; line 18 is
    // escaped.
    assert_eq!(hits("proto", false, src), vec![("A2", 5), ("A2", 6)]);
}

#[test]
fn a2_exempts_the_router_seam_and_nondet_crates() {
    let src = include_str!("fixtures/a2_shard_isolation.rs");
    for (krate, seam) in [
        ("proto", "crates/proto/src/world.rs"),
        ("proto", "crates/proto/src/shard.rs"),
        ("proto", "crates/proto/src/arena.rs"),
        ("sim", "crates/sim/src/shard.rs"),
    ] {
        let findings = lint_source(krate, seam, false, src);
        assert!(
            findings.iter().all(|f| f.rule != RuleId::A2),
            "{seam} is the sanctioned shard router seam: {findings:?}"
        );
    }
    // `analysis` is outside the deterministic-crate scope.
    assert_eq!(hits("analysis", false, src), vec![]);
}

#[test]
fn escapes_suppress_and_misuse_is_flagged() {
    let src = include_str!("fixtures/escapes.rs");
    // Lines 3 (trailing escape) and 5 (escape on the line above) are
    // suppressed; an escape with no reason leaves the finding live and adds
    // E1; an unknown slug leaves the finding live and adds E2.
    assert_eq!(
        hits("proto", false, src),
        vec![("C2", 6), ("C2", 7), ("E1", 6), ("E2", 7)]
    );
}

#[test]
fn cfg_test_regions_are_exempt() {
    let src = include_str!("fixtures/cfg_test_exempt.rs");
    // Only the two library functions outside test regions fire; everything
    // inside `#[cfg(test)] mod tests` and `#[test] fn` is exempt.
    assert_eq!(hits("proto", false, src), vec![("C3", 5), ("C3", 29)]);
}

#[test]
fn json_output_is_well_formed() {
    let src = include_str!("fixtures/s1_missing_forbid.rs");
    let findings = lint_source("proto", "fixture.rs", true, src);
    let json = cs_lint::to_json(&findings);
    assert!(json.contains("\"rule\": \"S1\""));
    assert!(json.contains("\"slug\": \"forbid-unsafe\""));
    assert!(json.contains("\"count\": 1"));
}
