//! The CLI's `--list-rules`, `--help`, and `--explain` text used to be
//! hand-maintained println blocks and had drifted from `RuleId`. All
//! three are now *derived* from the single rule-metadata table in
//! `rules.rs`; these tests pin the derivation so a new rule cannot ship
//! without showing up everywhere.

use cs_lint::{explain_text, help_text, list_rules_text, RuleId};

#[test]
fn list_rules_covers_every_rule() {
    let text = list_rules_text();
    for r in RuleId::ALL {
        let line = text
            .lines()
            .find(|l| l.starts_with(r.id()))
            .unwrap_or_else(|| panic!("--list-rules has no line for {}", r.id()));
        assert!(
            line.contains(r.slug()),
            "{} line is missing its slug",
            r.id()
        );
        assert!(
            line.contains(r.scope()),
            "{} line is missing its scope",
            r.id()
        );
    }
    // And nothing extra: one header plus one line per rule.
    assert_eq!(text.lines().count(), 1 + RuleId::ALL.len());
}

#[test]
fn help_covers_every_rule() {
    let text = help_text();
    for r in RuleId::ALL {
        assert!(text.contains(r.id()), "--help is missing {}", r.id());
        assert!(
            text.contains(r.slug()),
            "--help is missing slug {}",
            r.slug()
        );
        assert!(
            text.contains(r.summary()),
            "--help is missing the summary of {}",
            r.id()
        );
    }
}

#[test]
fn every_rule_has_an_explanation() {
    for r in RuleId::ALL {
        assert!(
            r.explain().len() >= 80,
            "{} needs a substantive --explain rationale",
            r.id()
        );
        for probe in [r.id(), r.slug()] {
            let text =
                explain_text(probe).unwrap_or_else(|| panic!("--explain {probe} resolved nothing"));
            assert!(text.contains(r.explain()));
            assert!(text.contains(r.slug()));
        }
        // Ids resolve case-insensitively (`cs-lint --explain p1`).
        assert!(explain_text(&r.id().to_lowercase()).is_some());
    }
    assert!(explain_text("no-such-rule").is_none());
}

#[test]
fn metadata_table_is_consistent() {
    for (i, r) in RuleId::ALL.iter().enumerate() {
        // ids and slugs are unique.
        for other in &RuleId::ALL[i + 1..] {
            assert_ne!(r.id(), other.id());
            assert_ne!(r.slug(), other.slug());
        }
        // Escapability matches the meta-rule convention.
        let is_meta = r.id().starts_with('E');
        assert_eq!(r.is_escapable(), !is_meta, "{} escapability", r.id());
    }
}
