//! The workspace itself must lint clean: every D1/D2/C1/C2/C3/S1 finding in
//! `crates/` is either fixed or carries a reasoned allow-escape. This is the
//! same check CI runs via `cargo run -p cs-lint -- --deny`.
//!
//! The symbol-table assertions below are the guard against the cross-file
//! pass silently seeing *nothing*: "zero P1/R1/X1 findings" is only
//! meaningful if the index provably contains the manager fields, the
//! stream-id table, and the event alphabet the rules check.

use std::path::Path;

use cs_lint::{build_index, lint_workspace, Config};

/// The chaos-injection modules added for the scenario DSL live inside
/// det-scope: `proto` (chaos.rs) and `core` (spec.rs) are det-crates, the
/// module paths are not test-exempt, and determinism rules actually fire
/// on offending source placed at those paths.
#[test]
fn injection_modules_are_in_det_scope() {
    let cfg = Config::default();
    for krate in ["proto", "core"] {
        assert!(
            cfg.det_crates.iter().any(|c| c == krate),
            "det_crates must cover the {krate} injection module"
        );
    }
    let bad = "use std::collections::HashMap;\nfn f() { let _ = std::time::Instant::now(); }\n";
    for (krate, rel) in [
        ("proto", "crates/proto/src/chaos.rs"),
        ("core", "crates/core/src/spec.rs"),
    ] {
        let findings = cs_lint::lint_source_with(krate, rel, false, bad, &cfg);
        assert!(
            findings.iter().any(|f| f.rule.slug() == "det-collections"),
            "{rel}: D1 must fire in det-scope"
        );
        assert!(
            findings.iter().any(|f| f.rule.slug() == "ambient-entropy"),
            "{rel}: D2 must fire in det-scope"
        );
    }
}

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

/// The cross-file pass must actually *see* the structures it guards.
#[test]
fn symbol_table_sees_the_real_workspace() {
    let cfg = Config::default();
    let index = build_index(workspace_root(), &cfg).expect("workspace walk succeeds");

    // R1: the sanctioned stream module and its full stream-id table,
    // including the PR 6 gated FREERIDER stream and the CHANNEL id that
    // used to hide in cs-core as a local constant.
    assert!(index.has_stream_module);
    for name in [
        "ARRIVALS",
        "SESSIONS",
        "MEMBERSHIP",
        "SELECTION",
        "NETWORK",
        "CAPACITY",
        "BASELINE",
        "RETRY",
        "FREERIDER",
        "CHANNEL",
    ] {
        assert!(
            index.stream_consts.iter().any(|s| s == name),
            "streams::{name} missing from the symbol table"
        );
    }

    // P1: the proto manager split's pub(super) state fields are owned.
    let proto = index
        .crates
        .iter()
        .find(|c| c.name == "proto")
        .expect("proto crate indexed");
    for (owner, field) in [
        ("partnership", "last_adapt"),
        ("stream", "parents"),
        ("stream", "next_play"),
    ] {
        assert!(
            proto
                .owned_fields
                .iter()
                .any(|o| o.owner == owner && o.field == field),
            "pub(super) field {owner}/{field} missing from the symbol table \
             (owned: {:?})",
            proto
                .owned_fields
                .iter()
                .map(|o| format!("{}/{}", o.owner, o.field))
                .collect::<Vec<_>>()
        );
    }

    // X1: exactly one event alphabet, and enum / kind_class / dispatch
    // agree in arity with no wildcard hiding missing arms.
    assert_eq!(index.alphabets.len(), 1, "one Event alphabet expected");
    let al = &index.alphabets[0];
    assert_eq!(al.file, "crates/proto/src/world.rs");
    assert!(
        al.variants.len() >= 18,
        "event alphabet shrank unexpectedly"
    );
    assert_eq!(al.kind_table.len(), al.variants.len());
    assert_eq!(al.dispatch_arms.len(), al.variants.len());
    assert!(!al.dispatch_has_wildcard);
    // kind_class indices are dense 0..N (the telemetry slot-vec contract).
    let mut idx: Vec<u32> = al.kind_table.iter().filter_map(|a| a.index).collect();
    idx.sort_unstable();
    assert_eq!(idx, (0..al.variants.len() as u32).collect::<Vec<_>>());
}

/// The wall-clock quarantine is closed: `ambient-entropy` (D2) escapes —
/// the only sanctioned way to read `Instant::now` & co. outside the RNG
/// module — appear in exactly the documented wall-clock modules (the
/// dispatch profiler, the span recorder, the bench harness, and the CLI's
/// manifest/bench timing), and every one carries a written reason. A new
/// escape anywhere else means wall-clock use leaked into det-scope and
/// must either be removed or argued into this list.
#[test]
fn ambient_entropy_escapes_stay_in_the_wall_clock_quarantine() {
    const QUARANTINE: [&str; 4] = [
        "crates/bench/src/harness.rs",
        "crates/cli/src/main.rs",
        "crates/telemetry/src/profile.rs",
        "crates/telemetry/src/span.rs",
    ];
    let index = build_index(workspace_root(), &Config::default()).expect("workspace walk");
    let mut escaped_files: Vec<&str> = Vec::new();
    for krate in &index.crates {
        for file in &krate.files {
            let d2: Vec<_> = file
                .lexed
                .escapes
                .iter()
                .filter(|e| e.slug == "ambient-entropy")
                .collect();
            if d2.is_empty() {
                continue;
            }
            escaped_files.push(&file.rel_path);
            for e in &d2 {
                assert!(
                    e.has_reason,
                    "{}:{}: ambient-entropy escape without a reason",
                    file.rel_path, e.line
                );
            }
        }
    }
    escaped_files.sort_unstable();
    assert_eq!(
        escaped_files, QUARANTINE,
        "wall-clock (D2) escapes moved: update the quarantine list only \
         for modules whose measurements stay out of sim state"
    );
    // And the quarantine is real: D2 still fires on unescaped wall-clock
    // reads in each quarantined file's crate.
    let cfg = Config::default();
    let bad = "fn f() { let _ = std::time::Instant::now(); }\n";
    for rel in QUARANTINE {
        let krate = rel.split('/').nth(1).unwrap();
        let findings = cs_lint::lint_source_with(krate, rel, false, bad, &cfg);
        assert!(
            findings.iter().any(|f| f.rule.slug() == "ambient-entropy"),
            "{rel}: D2 must fire on undocumented wall-clock use"
        );
    }
}

#[test]
fn workspace_has_zero_findings() {
    let findings =
        lint_workspace(workspace_root(), &Config::default()).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "workspace must be lint-clean; run `cargo run -p cs-lint` to see:\n{}",
        findings
            .iter()
            .map(|f| format!("  {}:{}: {}: {}", f.file, f.line, f.rule.id(), f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
