//! The workspace itself must lint clean: every D1/D2/C1/C2/C3/S1 finding in
//! `crates/` is either fixed or carries a reasoned allow-escape. This is the
//! same check CI runs via `cargo run -p cs-lint -- --deny`.

use std::path::Path;

use cs_lint::{lint_workspace, Config};

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let findings = lint_workspace(root, &Config::default()).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "workspace must be lint-clean; run `cargo run -p cs-lint` to see:\n{}",
        findings
            .iter()
            .map(|f| format!("  {}:{}: {}: {}", f.file, f.line, f.rule.id(), f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
