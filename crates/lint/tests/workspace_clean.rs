//! The workspace itself must lint clean: every D1/D2/C1/C2/C3/S1 finding in
//! `crates/` is either fixed or carries a reasoned allow-escape. This is the
//! same check CI runs via `cargo run -p cs-lint -- --deny`.

use std::path::Path;

use cs_lint::{lint_workspace, Config};

/// The chaos-injection modules added for the scenario DSL live inside
/// det-scope: `proto` (chaos.rs) and `core` (spec.rs) are det-crates, the
/// module paths are not test-exempt, and determinism rules actually fire
/// on offending source placed at those paths.
#[test]
fn injection_modules_are_in_det_scope() {
    let cfg = Config::default();
    for krate in ["proto", "core"] {
        assert!(
            cfg.det_crates.iter().any(|c| c == krate),
            "det_crates must cover the {krate} injection module"
        );
    }
    let bad = "use std::collections::HashMap;\nfn f() { let _ = std::time::Instant::now(); }\n";
    for (krate, rel) in [
        ("proto", "crates/proto/src/chaos.rs"),
        ("core", "crates/core/src/spec.rs"),
    ] {
        let findings = cs_lint::lint_source_with(krate, rel, false, bad, &cfg);
        assert!(
            findings.iter().any(|f| f.rule.slug() == "det-collections"),
            "{rel}: D1 must fire in det-scope"
        );
        assert!(
            findings.iter().any(|f| f.rule.slug() == "ambient-entropy"),
            "{rel}: D2 must fire in det-scope"
        );
    }
}

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let findings = lint_workspace(root, &Config::default()).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "workspace must be lint-clean; run `cargo run -p cs-lint` to see:\n{}",
        findings
            .iter()
            .map(|f| format!("  {}:{}: {}: {}", f.file, f.line, f.rule.id(), f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
