//! End-to-end pipeline tests: scenario → protocol → log server →
//! analysis, exactly the chain the paper's measurement went through.

use coolstreaming::experiments::{
    fig10_sessions, fig3_user_types, fig5_population, fig6_startup, fig8_continuity, LogView,
};
use coolstreaming::Scenario;
use cs_logging::LogServer;
use cs_sim::SimTime;

fn small_run(seed: u64) -> coolstreaming::RunArtifacts {
    Scenario::steady(0.4)
        .with_seed(seed)
        .with_window(SimTime::ZERO, SimTime::from_mins(20))
        .run()
}

#[test]
fn whole_pipeline_produces_every_figure() {
    let artifacts = small_run(1);
    let view = LogView::build(&artifacts);

    let fig3 = fig3_user_types(&artifacts, &view);
    assert!(fig3.inferred.values().sum::<usize>() > 100);
    assert!(fig3.top30_upload_share > 0.5);

    let pop = fig5_population(
        &view,
        SimTime::ZERO,
        SimTime::from_mins(20),
        SimTime::from_mins(1),
    );
    assert!(pop.iter().map(|(_, c)| *c).max().unwrap() > 50);

    let fig6 = fig6_startup(&view, SimTime::ZERO, SimTime::MAX);
    assert!(fig6.ready.len() > 100);
    assert!(fig6.ready.median().unwrap() > 5.0);

    let fig8 = fig8_continuity(
        &view,
        SimTime::ZERO,
        SimTime::from_mins(20),
        SimTime::from_mins(4),
    );
    assert!(!fig8.series.is_empty());

    let fig10 = fig10_sessions(&view);
    assert!(fig10.durations.len() > 50);
}

#[test]
fn log_round_trips_through_text_serialization() {
    let artifacts = small_run(2);
    let text = artifacts.world.log.to_text();
    let back = LogServer::from_text(&text).expect("parseable");
    assert_eq!(back.entries(), artifacts.world.log.entries());
    // And the re-parsed log produces identical session reconstruction.
    let (reports, bad) = back.parse_all();
    assert!(bad.is_empty());
    let sessions = cs_analysis::reconstruct(&reports);
    let view = LogView::build(&artifacts);
    assert_eq!(sessions.len(), view.sessions.len());
}

#[test]
fn end_to_end_determinism_across_full_pipeline() {
    let a = small_run(3);
    let b = small_run(3);
    assert_eq!(a.world.log.to_text(), b.world.log.to_text());
    assert_eq!(a.world.stats.arrivals, b.world.stats.arrivals);
    assert_eq!(
        a.world.stats.blocks_delivered,
        b.world.stats.blocks_delivered
    );
    assert_eq!(a.world.snapshots.len(), b.world.snapshots.len());
    let c = small_run(4);
    assert_ne!(a.world.log.to_text(), c.world.log.to_text());
}

#[test]
fn log_view_matches_ground_truth_where_no_artifact_applies() {
    let artifacts = small_run(5);
    let view = LogView::build(&artifacts);

    // Activity timestamps: every logged session maps to a ground-truth
    // record with identical join/ready times (activity reports are
    // immediate, so no sampling loss applies).
    let mut checked = 0;
    for s in &view.sessions {
        let rec = &artifacts.world.sessions[s.node as usize];
        assert_eq!(rec.node.0, s.node);
        if let (Some(lj), Some(gj)) = (s.join, Some(rec.join)) {
            assert_eq!(lj, gj, "join time mismatch for node {}", s.node);
        }
        if let Some(lr) = s.ready {
            assert_eq!(Some(lr), rec.ready, "ready mismatch for node {}", s.node);
            checked += 1;
        }
    }
    assert!(checked > 50, "too few sessions to be meaningful");

    // Aggregate traffic: bytes in traffic reports never exceed ground
    // truth (reports lag by up to one period) and capture most of it.
    let logged_up: u64 = view.sessions.iter().map(|s| s.up_bytes).sum();
    let true_up: u64 = artifacts
        .world
        .sessions
        .iter()
        .filter(|r| r.class.is_user())
        .map(|r| r.up_bytes)
        .sum();
    assert!(logged_up <= true_up);
    assert!(
        logged_up as f64 > 0.5 * true_up as f64,
        "reports captured only {logged_up} of {true_up} bytes"
    );
}

#[test]
fn population_curve_matches_world_alive_count_at_horizon() {
    let artifacts = small_run(6);
    let view = LogView::build(&artifacts);
    let horizon = SimTime::from_mins(20);
    let curve = fig5_population(&view, SimTime::ZERO, horizon, SimTime::from_secs(30));
    let final_bin = curve.last().unwrap().1;
    let alive = artifacts
        .world
        .net
        .iter_alive()
        .filter(|n| n.class.is_user())
        .count() as i64;
    // The last bin counts sessions alive during it; allow the joins and
    // leaves within that bin as slack.
    assert!(
        (final_bin - alive).abs() <= 15,
        "curve says {final_bin}, world says {alive}"
    );
}
