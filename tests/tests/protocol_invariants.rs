//! Protocol-state invariants, checked on live worlds mid-run and at the
//! horizon: referential integrity of the partner/parent/child graph, the
//! `M` bound, cool-down monotonicity, and session-record sanity.

use coolstreaming::Scenario;
use cs_proto::CsWorld;
use cs_sim::SimTime;

fn assert_invariants(world: &CsWorld, label: &str) {
    for info in world.net.iter_alive() {
        let Some(peer) = world.peer(info.id) else {
            continue;
        };
        // Partner bound M (per class).
        let max = world.params.max_partners_for(info.class);
        assert!(
            peer.partners().len() <= max,
            "{label}: {:?} has {} partners > M = {max}",
            info.id,
            peer.partners().len()
        );
        // Partner symmetry and liveness.
        for (&q, view) in peer.partners() {
            assert!(
                world.net.is_alive(q),
                "{label}: {:?} partnered with dead {:?}",
                info.id,
                q
            );
            let back = world
                .peer(q)
                .map(|qp| qp.partners().contains_key(&info.id))
                .unwrap_or(false);
            assert!(
                back,
                "{label}: partnership {:?}→{:?} not symmetric",
                info.id, q
            );
            // Directions are complementary.
            let q_view_outgoing = world.peer(q).unwrap().partners()[&info.id].outgoing;
            assert_ne!(
                view.outgoing, q_view_outgoing,
                "{label}: both ends claim the same direction"
            );
        }
        // Parents are partners (selection never leaves the partner set).
        for parent in peer.parents().iter().flatten() {
            assert!(
                peer.partners().contains_key(parent),
                "{label}: {:?} has non-partner parent {:?}",
                info.id,
                parent
            );
            // And the parent's children list contains us.
            let listed = world
                .peer(*parent)
                .map(|pp| pp.children().iter().any(|&(c, _)| c == info.id))
                .unwrap_or(false);
            assert!(
                listed,
                "{label}: parent {:?} does not list child {:?}",
                parent, info.id
            );
        }
        // Children entries point back at us via their parent slots.
        for &(c, j) in peer.children() {
            if !world.net.is_alive(c) {
                continue; // lazily cleaned at the next push round
            }
            if let Some(cp) = world.peer(c) {
                assert_eq!(
                    cp.parents()[j as usize],
                    Some(info.id),
                    "{label}: stale subscription ({:?}, {j}) at {:?}",
                    c,
                    info.id
                );
            }
        }
        // Buffer sanity: no sub-stream is ahead of the live edge.
        if let Some(buf) = peer.buffer() {
            if let Some(edge) = world.params.live_edge(SimTime::MAX) {
                for i in 0..world.params.substreams {
                    if let Some(h) = buf.latest(i) {
                        assert!(h <= edge);
                    }
                }
            }
        }
    }
}

#[test]
fn graph_invariants_hold_throughout_a_churny_run() {
    let scenario = Scenario::steady(0.5)
        .with_seed(42)
        .with_window(SimTime::ZERO, SimTime::from_mins(15));
    // Re-run to successive horizons: cheap way to sample invariant state
    // at several times deterministically.
    for minutes in [3u64, 6, 10, 15] {
        let artifacts = Scenario {
            horizon: SimTime::from_mins(minutes),
            ..scenario.clone()
        }
        .run();
        assert_invariants(&artifacts.world, &format!("t={minutes}m"));
    }
}

#[test]
fn session_records_are_well_ordered() {
    let artifacts = Scenario::steady(0.6)
        .with_seed(43)
        .with_window(SimTime::ZERO, SimTime::from_mins(20))
        .run();
    let mut finished = 0;
    for rec in artifacts
        .world
        .sessions
        .iter()
        .filter(|r| r.class.is_user())
    {
        if let Some(ss) = rec.start_sub {
            assert!(ss >= rec.join, "start_sub before join: {rec:?}");
        }
        if let Some(r) = rec.ready {
            assert!(r >= rec.start_sub.expect("ready implies start_sub"));
        }
        if let Some(l) = rec.leave {
            assert!(l >= rec.join);
            finished += 1;
        }
        assert!(rec.missed <= rec.due, "missed > due: {rec:?}");
        assert!(rec.reason.is_some(), "unfinalized record: {rec:?}");
    }
    assert!(finished > 100, "not enough completed sessions ({finished})");
}

#[test]
fn servers_never_leave_and_never_consume() {
    let artifacts = Scenario::steady(0.4)
        .with_seed(44)
        .with_window(SimTime::ZERO, SimTime::from_mins(12))
        .run();
    let w = &artifacts.world;
    for &s in &w.servers {
        assert!(w.net.is_alive(s), "server {s:?} departed");
        let rec = &w.sessions[s.index()];
        assert_eq!(rec.down_bytes, 0, "server downloaded from peers");
        assert!(rec.up_bytes > 0, "server {s:?} never served anyone");
    }
    assert!(w.net.is_alive(w.source));
}

#[test]
fn upload_accounting_balances() {
    let artifacts = Scenario::steady(0.4)
        .with_seed(45)
        .with_window(SimTime::ZERO, SimTime::from_mins(15))
        .run();
    let up: u64 = artifacts.world.sessions.iter().map(|r| r.up_bytes).sum();
    let down: u64 = artifacts.world.sessions.iter().map(|r| r.down_bytes).sum();
    assert_eq!(
        up, down,
        "every uploaded byte must be downloaded by someone"
    );
    let blocks = artifacts.world.stats.blocks_delivered;
    assert_eq!(
        up,
        blocks * artifacts.world.params.block_bytes as u64,
        "byte counters disagree with block counters"
    );
}

#[test]
fn adaptation_counters_are_consistent() {
    let artifacts = Scenario::steady(0.5)
        .with_seed(46)
        .with_window(SimTime::ZERO, SimTime::from_mins(15))
        .run();
    let per_session: u64 = artifacts
        .world
        .sessions
        .iter()
        .map(|r| r.adaptations as u64)
        .sum();
    assert_eq!(
        per_session, artifacts.world.stats.adaptations,
        "session-level and world-level adaptation counts disagree"
    );
}
