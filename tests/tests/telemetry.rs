//! Telemetry end-to-end: windowed metrics ride a scenario run without
//! perturbing it.
//!
//! The acceptance contract for the observability layer: telemetry is
//! passive (trace hashes are identical with it on or off, and still
//! match the golden hash), windows land on the configured sim-time
//! cadence, engine counters agree with the engine's own accounting, the
//! protocol series are populated, and the JSONL/profile renderings are
//! structurally valid.

use coolstreaming::telemetry::{Metric, SnapValue, TelemetryConfig};
use coolstreaming::{RunOptions, Scenario, TelemetryRun};
use cs_sim::SimTime;

/// The golden steady-state scenario from `tests/golden/trace_hashes.txt`.
fn golden_steady() -> Scenario {
    Scenario::steady(0.4)
        .with_seed(301)
        .with_window(SimTime::ZERO, SimTime::from_mins(6))
}

fn with_telemetry(window_secs: u64, profile: bool) -> RunOptions {
    RunOptions {
        check_invariants: false,
        invariant_stride: 0,
        trace_hash: true,
        record_spans: false,
        telemetry: Some(TelemetryConfig {
            window: SimTime::from_secs(window_secs),
            profile,
        }),
        shards: 0,
    }
}

const HASH_ONLY: RunOptions = RunOptions {
    check_invariants: false,
    invariant_stride: 0,
    trace_hash: true,
    record_spans: false,
    telemetry: None,
    shards: 0,
};

fn run_golden() -> (Option<u64>, TelemetryRun) {
    let run = golden_steady().run_observed(with_telemetry(300, true));
    let tel = run.telemetry.expect("telemetry requested");
    (run.trace_hash, tel)
}

#[test]
fn telemetry_is_passive_and_matches_golden_hash() {
    let plain = golden_steady().run_observed(HASH_ONLY);
    let (hash, tel) = run_golden();
    assert_eq!(
        plain.trace_hash, hash,
        "telemetry changed the dispatch sequence"
    );
    // Golden steady_state hash from tests/golden/trace_hashes.txt.
    assert_eq!(hash, Some(0xfd00912eb62e19b3), "golden trace hash moved");
    assert!(tel.events > 0);
}

#[test]
fn windows_follow_the_simtime_cadence() {
    let (_, tel) = run_golden();
    // 6 sim-minutes with 5-minute windows: one full window closed by the
    // first dispatch at-or-after t=300 s, plus the partial tail flushed
    // at the horizon.
    assert_eq!(tel.snapshots.len(), 2, "expected full + partial window");
    assert_eq!(tel.snapshots[0].start, SimTime::ZERO);
    assert_eq!(tel.snapshots[0].end, SimTime::from_secs(300));
    assert!(!tel.snapshots[0].partial);
    assert_eq!(tel.snapshots[1].start, SimTime::from_secs(300));
    assert_eq!(tel.snapshots[1].end, SimTime::from_mins(6));
    assert!(tel.snapshots[1].partial);
    for (i, s) in tel.snapshots.iter().enumerate() {
        assert_eq!(s.index as usize, i);
    }
}

#[test]
fn engine_counters_partition_the_event_total() {
    let (_, tel) = run_golden();
    // Registry totals across kinds equal the observer's event count…
    let registry_total: u64 = tel
        .registry
        .enumerate()
        .filter(|(_, key, _)| key.name == "engine_events_total")
        .map(|(_, _, m)| match m {
            Metric::Counter(n) => *n,
            other => panic!("engine_events_total must be a counter: {other:?}"),
        })
        .sum();
    assert_eq!(registry_total, tel.events);
    // …and the per-window deltas partition the same total.
    let window_sum: u64 = tel
        .snapshots
        .iter()
        .flat_map(|s| &s.series)
        .filter(|(id, _)| id.starts_with("engine_events_total"))
        .map(|(_, v)| match v {
            SnapValue::Counter { delta, .. } => *delta,
            other => panic!("counter snapshot expected: {other:?}"),
        })
        .sum();
    assert_eq!(window_sum, tel.events, "window deltas must partition total");
}

#[test]
fn protocol_series_are_populated() {
    let (_, tel) = run_golden();
    for name in [
        "proto_peers_alive",
        "proto_peers_ready",
        "proto_partners",
        "proto_buffer_occupancy_blocks",
        "proto_substream_lag_blocks",
        "proto_mcache_size",
        "proto_join_ready_ms",
    ] {
        assert!(
            tel.registry.enumerate().any(|(_, key, _)| key.name == name),
            "missing protocol series {name}"
        );
    }
    // At a 0.4/s arrival rate the population is alive at the horizon and
    // sessions reached media-ready, so the load-bearing series are
    // non-trivial, not just registered.
    match tel.registry.get("proto_peers_alive", &[]) {
        Some(Metric::Gauge(v)) => assert!(*v > 0, "no peers alive at horizon"),
        other => panic!("proto_peers_alive must be a gauge: {other:?}"),
    }
    match tel.registry.get("proto_join_ready_ms", &[]) {
        Some(Metric::Histogram(h)) => assert!(h.count() > 0, "no join→ready latencies"),
        other => panic!("proto_join_ready_ms must be a histogram: {other:?}"),
    }
}

#[test]
fn jsonl_and_profile_render_valid_shapes() {
    let (_, tel) = run_golden();
    for snap in &tel.snapshots {
        let line = snap.to_json();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"window\":"), "{line}");
        assert!(
            line.contains("\"start_us\":") && line.contains("\"end_us\":"),
            "{line}"
        );
        assert!(line.contains("\"counters\":{"), "{line}");
        assert!(!line.contains('\n'), "JSONL lines must be single-line");
    }
    let profile = tel.profile.expect("profiling enabled");
    assert!(profile.events() > 0, "profiler sampled nothing");
    let json = profile.to_json();
    assert!(json.starts_with("{\"schema\":\"cs-telemetry-profile/2\""));
    assert!(json.contains("\"kinds\":{"));
}

#[test]
fn profile_off_omits_the_profiler() {
    let run = golden_steady().run_observed(with_telemetry(300, false));
    let tel = run.telemetry.expect("telemetry requested");
    assert!(tel.profile.is_none());
    assert!(!tel.snapshots.is_empty());
}

#[test]
fn custom_window_changes_the_grid() {
    let run = golden_steady().run_observed(with_telemetry(120, false));
    let tel = run.telemetry.expect("telemetry requested");
    // 6 minutes on a 2-minute grid: windows end at 120/240/360 s, the
    // last exactly at the horizon.
    assert_eq!(tel.snapshots.len(), 3);
    for (i, s) in tel.snapshots.iter().enumerate() {
        assert_eq!(s.end, SimTime::from_secs(120 * (i as u64 + 1)));
    }
}
