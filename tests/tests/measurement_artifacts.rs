//! The paper's measurement artifacts must *emerge* from our log pipeline:
//! the 5-minute status granularity censors the bad tail of churning
//! peers (§V.D), and the §V.B classification misfiles permissive-NAT
//! users as UPnP ("errors can occur").

use coolstreaming::experiments::LogView;
use coolstreaming::Scenario;
use cs_net::{ConnectivityPolicy, NodeClass};
use cs_proto::DepartReason;
use cs_sim::SimTime;

#[test]
fn giveup_sessions_leave_no_final_qos_report() {
    // Force a hostile overlay so give-ups occur: starve it of servers.
    let mut scenario = Scenario::steady(0.6)
        .with_seed(7)
        .with_window(SimTime::ZERO, SimTime::from_mins(25))
        .with_servers(1, cs_net::Bandwidth::mbps(6));
    scenario.params.giveup_ticks = 8;
    let artifacts = scenario.run();
    let view = LogView::build(&artifacts);

    let giveups: Vec<_> = artifacts
        .world
        .sessions
        .iter()
        .filter(|r| r.reason == Some(DepartReason::GiveUp))
        .collect();
    assert!(
        !giveups.is_empty(),
        "scenario failed to produce any give-up departures"
    );

    // §V.D: the low-continuity terminal period of these sessions is not
    // reported, because reporting is periodic and they leave first. So
    // the aggregate log-reported loss must undercount ground truth.
    let mut true_due = 0u64;
    let mut true_missed = 0u64;
    let mut logged_due = 0u64;
    let mut logged_missed = 0u64;
    for rec in &giveups {
        true_due += rec.due;
        true_missed += rec.missed;
        if let Some(s) = view.sessions.iter().find(|s| s.node == rec.node.0) {
            for &(_, d, m) in &s.qos {
                logged_due += d;
                logged_missed += m;
            }
        }
    }
    let true_loss = true_missed as f64 / true_due.max(1) as f64;
    let logged_loss = logged_missed as f64 / logged_due.max(1) as f64;
    assert!(
        logged_loss < true_loss,
        "reporting should censor the bad tail: logged {logged_loss:.3} vs true {true_loss:.3}"
    );
}

#[test]
fn permissive_nat_users_classify_as_upnp() {
    // Make permissive NATs common so the artifact is statistically
    // visible.
    let mut scenario = Scenario::steady(0.5)
        .with_seed(8)
        .with_window(SimTime::ZERO, SimTime::from_mins(25));
    scenario.policy = ConnectivityPolicy {
        nat_accept_prob: 0.5,
        firewall_accept_prob: 0.0,
    };
    let artifacts = scenario.run();
    let view = LogView::build(&artifacts);

    // Ground truth: NAT sessions that the log classifies as UPnP exist.
    let mut nat_as_upnp = 0;
    let mut nat_total = 0;
    for s in &view.sessions {
        let rec = &artifacts.world.sessions[s.node as usize];
        if rec.class == NodeClass::Nat {
            nat_total += 1;
            if s.infer_class() == Some(NodeClass::Upnp) {
                nat_as_upnp += 1;
            }
        }
    }
    assert!(nat_total > 100);
    let rate = nat_as_upnp as f64 / nat_total as f64;
    assert!(
        rate > 0.1,
        "expected a visible misclassification rate, got {rate:.3} ({nat_as_upnp}/{nat_total})"
    );
}

#[test]
fn classification_is_faithful_for_strict_middleboxes() {
    // With strict NAT/firewall policy there is no inference ambiguity
    // for *reporting* users: private+incoming cannot happen.
    let mut scenario = Scenario::steady(0.5)
        .with_seed(9)
        .with_window(SimTime::ZERO, SimTime::from_mins(25));
    scenario.policy = ConnectivityPolicy::strict();
    let artifacts = scenario.run();
    let view = LogView::build(&artifacts);
    for s in &view.sessions {
        let rec = &artifacts.world.sessions[s.node as usize];
        if rec.class == NodeClass::Nat {
            assert_ne!(
                s.infer_class(),
                Some(NodeClass::Upnp),
                "strict NAT misclassified as UPnP: node {}",
                s.node
            );
        }
        // Public users that had an incoming partner and reported it are
        // correctly recovered.
        if rec.class == NodeClass::DirectConnect && s.max_incoming > 0 {
            assert_eq!(s.infer_class(), Some(NodeClass::DirectConnect));
        }
    }
}

#[test]
fn reported_continuity_is_not_pessimistic() {
    // The complementary direction of the §V.D artifact: reported CI can
    // only overstate (never understate) the true experience, because the
    // unreported intervals are the bad ones.
    let artifacts = Scenario::steady(0.5)
        .with_seed(10)
        .with_window(SimTime::ZERO, SimTime::from_mins(30))
        .run();
    let view = LogView::build(&artifacts);
    let mut logged_due = 0u64;
    let mut logged_missed = 0u64;
    for s in &view.sessions {
        for &(_, d, m) in &s.qos {
            logged_due += d;
            logged_missed += m;
        }
    }
    let mut true_due = 0u64;
    let mut true_missed = 0u64;
    for r in artifacts
        .world
        .sessions
        .iter()
        .filter(|r| r.class.is_user())
    {
        true_due += r.due;
        true_missed += r.missed;
    }
    let logged_ci = 1.0 - logged_missed as f64 / logged_due.max(1) as f64;
    let true_ci = 1.0 - true_missed as f64 / true_due.max(1) as f64;
    assert!(
        logged_ci >= true_ci - 0.001,
        "logged CI {logged_ci:.4} should not be below true CI {true_ci:.4}"
    );
}
