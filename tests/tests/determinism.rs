//! Determinism: the simulation is a pure function of (scenario, seed).
//!
//! Two runs of the same scenario and seed must produce bit-identical
//! traces, logs, and topology snapshots; observers must be passive
//! (attaching them cannot change the run); and different seeds must
//! produce different traces.

use coolstreaming::{RunOptions, Scenario};
use cs_sim::SimTime;

fn small_steady() -> Scenario {
    Scenario::steady(0.4)
        .with_seed(101)
        .with_window(SimTime::ZERO, SimTime::from_mins(6))
        .with_snapshots(Some(SimTime::from_secs(30)))
}

const HASH_ONLY: RunOptions = RunOptions {
    check_invariants: false,
    invariant_stride: 0,
    trace_hash: true,
    record_spans: false,
    telemetry: None,
    shards: 0,
};

#[test]
fn same_seed_same_trace_hash_and_artifacts() {
    let a = small_steady().run_observed(HASH_ONLY);
    let b = small_steady().run_observed(HASH_ONLY);
    assert_eq!(a.trace_hash, b.trace_hash, "trace diverged under one seed");
    assert!(a.trace_hash.is_some());
    assert_eq!(
        a.artifacts.world.log.to_text(),
        b.artifacts.world.log.to_text(),
        "log text diverged under one seed"
    );
    assert_eq!(
        a.artifacts.world.snapshots, b.artifacts.world.snapshots,
        "topology snapshots diverged under one seed"
    );
    assert!(!a.artifacts.world.snapshots.is_empty(), "cadence was set");
}

#[test]
fn different_seeds_different_trace_hash() {
    let a = small_steady().run_observed(HASH_ONLY);
    let b = small_steady().with_seed(102).run_observed(HASH_ONLY);
    assert_ne!(
        a.trace_hash, b.trace_hash,
        "two seeds produced the same event trace"
    );
}

/// Observers are passive: a run with the full instrumentation attached
/// produces artifacts bit-identical to a plain `run()` of the same
/// scenario.
#[test]
fn observed_run_is_bit_identical_to_plain_run() {
    let observed = small_steady().run_observed(RunOptions {
        check_invariants: true,
        invariant_stride: 1,
        trace_hash: true,
        record_spans: false,
        telemetry: None,
        shards: 0,
    });
    let plain = small_steady().run();
    assert_eq!(
        observed.artifacts.world.log.to_text(),
        plain.world.log.to_text(),
        "instrumentation changed the log"
    );
    assert_eq!(
        observed.artifacts.world.snapshots, plain.world.snapshots,
        "instrumentation changed the snapshots"
    );
    assert_eq!(
        observed.artifacts.world.stats.arrivals,
        plain.world.stats.arrivals
    );
    assert_eq!(
        observed.artifacts.run_stats.events, plain.run_stats.events,
        "instrumentation changed the event count"
    );
    let chk = observed.invariants.expect("checker was requested");
    assert!(chk.is_clean(), "{}", chk.report());
}

/// The trace hash distinguishes runs that the summary statistics might
/// not: a slightly different window produces a different hash.
#[test]
fn trace_hash_is_sensitive_to_the_window() {
    let a = small_steady().run_observed(HASH_ONLY);
    let b = small_steady()
        .with_window(
            SimTime::ZERO,
            SimTime::from_mins(6) + SimTime::from_secs(30),
        )
        .run_observed(HASH_ONLY);
    assert_ne!(a.trace_hash, b.trace_hash);
}
