//! Workload-to-world shape tests: the generated audience drives the
//! population and behaviour patterns the figures depend on.

use coolstreaming::experiments::{fig5_population, LogView};
use coolstreaming::Scenario;
use cs_sim::SimTime;
use cs_workload::{RateProfile, Workload};

#[test]
fn steady_population_reaches_littles_law_level() {
    // Little's law: N ≈ λ · E[session length]. Our session model mixes
    // heavy-tailed watchers and zappers; just require the realized mean
    // population to be within a factor 2 of the λ·E[duration] estimate.
    let rate = 0.5;
    let artifacts = Scenario::steady(rate)
        .with_seed(21)
        .with_window(SimTime::ZERO, SimTime::from_mins(40))
        .run();
    let view = LogView::build(&artifacts);
    let curve = fig5_population(
        &view,
        SimTime::from_mins(25),
        SimTime::from_mins(40),
        SimTime::from_mins(1),
    );
    let mean_pop = curve.iter().map(|(_, c)| *c as f64).sum::<f64>() / curve.len() as f64;
    // E[duration] of the default session model ≈ 20–30 minutes, but the
    // 40-minute window truncates it; population should be a few hundred.
    assert!(
        mean_pop > rate * 300.0 && mean_pop < rate * 2400.0,
        "mean population {mean_pop} out of plausible band"
    );
}

#[test]
fn flash_crowd_is_visible_in_the_join_series() {
    let mut wl = Workload::steady(0.3);
    wl.profile.spikes.push(cs_workload::Spike {
        start: SimTime::from_mins(10),
        duration: SimTime::from_mins(3),
        multiplier: 8.0,
    });
    let artifacts = Scenario::steady(0.3)
        .with_workload(wl)
        .with_seed(22)
        .with_window(SimTime::ZERO, SimTime::from_mins(20))
        .run();
    let view = LogView::build(&artifacts);
    let joins_in = |m0: u64, m1: u64| {
        view.sessions
            .iter()
            .filter(|s| {
                matches!(s.join, Some(j) if j >= SimTime::from_mins(m0) && j < SimTime::from_mins(m1))
            })
            .count()
    };
    let calm = joins_in(5, 8);
    let crowd = joins_in(10, 13);
    assert!(
        crowd > calm * 4,
        "flash crowd joins {crowd} not ≫ calm joins {calm}"
    );
}

#[test]
fn program_end_causes_mass_departure() {
    // Use the event-day workload around the 22:00 program end.
    let artifacts = Scenario::event_day(0.01)
        .with_seed(23)
        .with_window(SimTime::from_hours(20), SimTime::from_hours(23))
        .run();
    let view = LogView::build(&artifacts);
    let leaves_in = |h0: f64, h1: f64| {
        view.sessions
            .iter()
            .filter(|s| matches!(s.leave, Some(l) if l.hour_of_day() >= h0 && l.hour_of_day() < h1))
            .count()
    };
    // End-aligned leaves land in a burst right at 22:00; compare
    // equal-width 3-minute windows just before and just after.
    let before = leaves_in(21.9, 21.95);
    let at_end = leaves_in(22.0, 22.05);
    assert!(
        at_end > before * 2,
        "program-end departures {at_end} not ≫ baseline {before}"
    );
}

#[test]
fn rate_profile_integrates_to_realized_arrivals_inside_the_world() {
    let profile = RateProfile::event_day(1.0);
    let wl = Workload {
        profile,
        ..Workload::steady(0.0)
    };
    let expected = wl.expected_arrivals(SimTime::from_hours(18), SimTime::from_hours(21));
    let arrivals = wl
        .generate(24, SimTime::from_hours(18), SimTime::from_hours(21))
        .len() as f64;
    assert!(
        (arrivals - expected).abs() < expected * 0.1,
        "arrivals {arrivals} vs expected {expected}"
    );
}

#[test]
fn retry_sessions_share_user_identity_and_increment_index() {
    let mut scenario = Scenario::steady(0.5)
        .with_seed(25)
        .with_window(SimTime::ZERO, SimTime::from_mins(20))
        .with_servers(1, cs_net::Bandwidth::mbps(6)); // scarce → failures
    scenario.params.giveup_ticks = 8;
    let artifacts = scenario.run();
    let mut by_user: std::collections::BTreeMap<u32, Vec<&cs_proto::SessionRecord>> =
        Default::default();
    for r in artifacts
        .world
        .sessions
        .iter()
        .filter(|r| r.class.is_user())
    {
        by_user.entry(r.user.0).or_default().push(r);
    }
    let mut saw_retry = false;
    for (user, mut recs) in by_user {
        recs.sort_by_key(|r| r.join);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(
                r.retry_index as usize, i,
                "user {user}: retry indices not sequential"
            );
            assert_eq!(r.class, recs[0].class, "class changed across retries");
        }
        if recs.len() > 1 {
            saw_retry = true;
        }
    }
    assert!(saw_retry, "no user ever retried in a scarce overlay");
}
