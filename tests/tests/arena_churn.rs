//! Arena churn smoke: under sustained join→depart→rejoin turnover the
//! generational peer arena must recycle vacated slots instead of growing
//! with total arrivals — the memory property the million-peer refactor
//! exists for. (Stale-handle detection under slot reuse is covered by
//! the arena's own debug-build unit test in cs-proto.)

use coolstreaming::Scenario;
use cs_sim::SimTime;

/// A steady arrival stream whose sessions end well inside the horizon,
/// so the population turns over several times: total arrivals is a
/// multiple of peak concurrency, and the slot count must track the
/// latter.
#[test]
fn churn_recycles_arena_slots() {
    let a = Scenario::steady(1.5)
        .with_seed(77)
        .with_window(SimTime::ZERO, SimTime::from_mins(30))
        .with_snapshots(None)
        .run();

    let world = &a.world;
    let stats = &world.stats;
    assert!(
        a.scheduled_arrivals > 1_000,
        "want a large-N smoke, got {} arrivals",
        a.scheduled_arrivals
    );
    let departs = stats.finished_departs + stats.impatient_departs + stats.giveup_departs;
    assert!(
        departs > 500,
        "scenario must actually churn; only {departs} departures"
    );

    // The witness: the slab stops growing once the free list can serve
    // arrivals, so allocated slots stay near peak concurrency while
    // total arrivals keep climbing past it.
    assert!(
        world.peer_slots() < a.scheduled_arrivals / 2,
        "free-list reuse broken: {} slots for {} arrivals (live now: {})",
        world.peer_slots(),
        a.scheduled_arrivals,
        world.peer_count()
    );
    assert!(
        world.peer_slots() >= world.peer_count(),
        "slots ({}) below live population ({})",
        world.peer_slots(),
        world.peer_count()
    );
}
