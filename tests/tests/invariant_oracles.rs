//! The invariant-oracle regression harness: canonical scenarios run
//! under the [`InvariantChecker`] with golden trace-hash snapshots.
//!
//! Each scenario must (a) finish with zero invariant violations and
//! (b) reproduce the recorded trace hash exactly. A hash mismatch means
//! the event sequence changed — either an intentional protocol change
//! (regenerate the goldens) or an accidental determinism break.
//!
//! Regenerate goldens after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cs-integration --test invariant_oracles
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use coolstreaming::{RunOptions, Scenario};
use cs_integration::check_golden_in;
use cs_net::Bandwidth;
use cs_proto::{finalize_sessions, CsWorld, Event, EventKinds, InvariantChecker};
use cs_sim::{Engine, MultiObserver, SimTime, TraceHasher};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/trace_hashes.txt");
const GOLDEN_HEADER: &str = "Golden trace hashes. Regenerate: UPDATE_GOLDEN=1 cargo test -p cs-integration --test invariant_oracles";

/// Compare `hash` against the golden entry `name`, or record it when
/// `UPDATE_GOLDEN=1` is set.
fn check_golden(name: &str, hash: u64) {
    check_golden_in(GOLDEN_PATH, GOLDEN_HEADER, name, hash);
}

const FULL_CHECK: RunOptions = RunOptions {
    check_invariants: true,
    invariant_stride: 1,
    trace_hash: true,
    record_spans: false,
    telemetry: None,
    shards: 0,
};

/// Steady state: constant arrivals and departures around equilibrium.
#[test]
fn steady_state_is_invariant_clean() {
    let run = Scenario::steady(0.4)
        .with_seed(301)
        .with_window(SimTime::ZERO, SimTime::from_mins(6))
        .run_observed(FULL_CHECK);
    let chk = run.invariants.expect("checker requested");
    assert!(chk.is_clean(), "{}", chk.report());
    assert!(
        chk.checks_run() > 1_000,
        "checker barely ran: {}",
        chk.checks_run()
    );
    assert!(run.artifacts.world.stats.arrivals > 50);
    check_golden("steady_state", run.trace_hash.expect("hash requested"));
}

/// Flash crowd: the broadcast-evening arrival surge (§V.B), where
/// partnership and sub-stream structure churn the hardest.
#[test]
fn flash_crowd_is_invariant_clean() {
    let run = Scenario::event_day(0.004)
        .with_seed(302)
        .with_window(
            SimTime::from_hours(19),
            SimTime::from_hours(19) + SimTime::from_mins(10),
        )
        .run_observed(FULL_CHECK);
    let chk = run.invariants.expect("checker requested");
    assert!(chk.is_clean(), "{}", chk.report());
    assert!(run.artifacts.world.stats.arrivals > 20, "no crowd arrived");
    check_golden("flash_crowd", run.trace_hash.expect("hash requested"));
}

/// Server crash mid-run: children must repair onto other parents without
/// the structural invariants ever breaking, even transiently.
#[test]
fn server_crash_is_invariant_clean() {
    let scenario = Scenario::steady(0.4)
        .with_seed(303)
        .with_window(SimTime::ZERO, SimTime::from_mins(10))
        .with_servers(2, Bandwidth::mbps(24));
    let net = cs_net::Network::new(scenario.policy, scenario.latency, scenario.seed);
    let mut world = CsWorld::new(
        scenario.params,
        net,
        scenario.servers,
        scenario.server_bw,
        scenario.seed,
    );
    world.snapshot_interval = scenario.snapshot_interval;
    let arrivals = scenario
        .workload
        .generate(scenario.seed, scenario.start, scenario.horizon);

    let mut engine = Engine::new(world);
    let checker = Rc::new(RefCell::new(InvariantChecker::new()));
    let hasher = Rc::new(RefCell::new(TraceHasher::<Event, EventKinds>::new()));
    let mut multi = MultiObserver::new();
    multi.push(Box::new(Rc::clone(&checker)));
    multi.push(Box::new(Rc::clone(&hasher)));
    engine.set_observer(Box::new(multi));

    for (t, e) in engine.world().initial_events() {
        engine.schedule_at(t, e);
    }
    for (t, spec) in arrivals {
        engine.schedule_at(t, Event::Arrive(spec));
    }
    engine.schedule_at(SimTime::from_mins(4), Event::CrashServer(0));
    engine.run_until(scenario.horizon);
    let end = engine.now();
    engine.take_observer();
    let mut world = engine.into_world();
    checker.borrow_mut().check_world(end, &world);
    finalize_sessions(&mut world);

    assert!(
        !world.net.is_alive(world.servers[0]),
        "the crash never happened"
    );
    let chk = checker.borrow();
    assert!(chk.is_clean(), "{}", chk.report());
    // The crash event itself must be part of the hashed trace.
    check_golden("server_crash", hasher.borrow().hash());
}

/// The same harness catches corruption: strip one side of a partnership
/// in the final state and the oracle must flag it. Guards against the
/// checker silently passing everything.
#[test]
fn harness_detects_planted_corruption() {
    let run = Scenario::steady(0.4)
        .with_seed(301)
        .with_window(SimTime::ZERO, SimTime::from_mins(6))
        .run_observed(RunOptions {
            check_invariants: true,
            invariant_stride: 1,
            trace_hash: false,
            record_spans: false,
            telemetry: None,
            shards: 0,
        });
    let mut chk = run.invariants.expect("checker requested");
    assert!(chk.is_clean());
    // Re-validate a world whose accounting we break: lie about arrivals.
    let mut world = run.artifacts.world;
    world.stats.arrivals += 1;
    chk.check_world(SimTime::from_mins(6), &world);
    assert!(
        !chk.is_clean(),
        "oracle failed to flag a session-accounting mismatch"
    );
    assert!(chk.report().contains("session-count"), "{}", chk.report());
}
