//! The perf-trajectory harness (`coolstream bench`, `cs_bench::harness`)
//! measured against the golden scenario library: the harness must cover
//! every scenario, reproduce the committed golden trace hashes with its
//! full instrumentation attached (hasher + telemetry + profiler + span
//! recorder are all passive), and its BENCH report must survive a JSON
//! round trip byte-for-value.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use coolstreaming::{RunOptions, ScenarioSpec};
use cs_bench::{compare, run_bench, BenchOptions, BenchReport, BENCH_SCHEMA};
use cs_telemetry::TelemetryConfig;

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../scenarios")
}

/// The committed golden hashes, keyed by scenario name.
fn golden_hashes() -> BTreeMap<String, String> {
    let text = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/scenario_hashes.txt"),
    )
    .expect("golden hash file");
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let mut it = l.split_whitespace();
            (
                it.next().expect("name").to_string(),
                it.next().expect("hash").to_string(),
            )
        })
        .collect()
}

/// One full harness pass: every scenario in the library is measured, the
/// hashes equal the golden file (the measured code path IS the tested
/// code path), counts and rates are populated, and the report + span
/// stream have the committed shapes.
#[test]
fn bench_covers_the_library_and_reproduces_golden_hashes() {
    let mut opts = BenchOptions::new(scenarios_dir());
    opts.reps = 1;
    opts.git_describe = Some("test".into());
    let run = run_bench(&opts).expect("bench runs");
    let report = &run.report;
    assert_eq!(report.schema, BENCH_SCHEMA);
    assert_eq!(report.reps, 1);
    assert!(report.cores >= 1, "host fingerprint missing");

    let golden = golden_hashes();
    assert_eq!(
        report.scenarios.len(),
        golden.len(),
        "bench must cover the whole golden library"
    );
    for s in &report.scenarios {
        let want = golden
            .get(&s.name)
            .unwrap_or_else(|| panic!("{}: not in golden file", s.name));
        assert_eq!(
            &s.trace_hash, want,
            "{}: hash drift with the harness attached — observers must be passive",
            s.name
        );
        assert!(s.events > 0 && s.peers > 0, "{}: empty run", s.name);
        assert_eq!(s.wall_ns.len(), 1);
        assert!(s.min_wall_ns > 0 && s.events_per_sec > 0, "{}", s.name);
        let kind_total: u64 = s.event_kinds.values().sum();
        let mgr_total: u64 = s.manager_events.values().sum();
        assert_eq!(kind_total, s.events, "{}: kind totals disagree", s.name);
        assert_eq!(mgr_total, s.events, "{}: manager totals disagree", s.name);
        assert!(
            !s.dispatch_ns.is_empty(),
            "{}: no dispatch percentiles",
            s.name
        );
        for (kind, p) in &s.dispatch_ns {
            assert!(
                p.p50_ns <= p.p95_ns && p.p95_ns <= p.p99_ns,
                "{}/{kind}: percentiles out of order",
                s.name
            );
        }
    }

    // Round trip: the report parses back value-identical.
    let back = BenchReport::from_json(&report.to_json()).expect("parse");
    assert_eq!(*report, back);

    // Span stream: schema header plus one line per dispatched event.
    let spans = run.spans_jsonl.expect("spans recorded by default");
    let mut lines = spans.lines();
    let header = lines.next().expect("header line");
    assert!(header.contains("\"schema\":\"cs-spans/1\""), "{header}");
    let total_events: u64 = report.scenarios.iter().map(|s| s.events).sum();
    assert_eq!(lines.count() as u64, total_events);

    // Self-comparison gates clean.
    let outcome = compare(report, report, 25, 100);
    assert!(outcome.passed() && outcome.warnings.is_empty());
}

/// Determinism under instrumentation: a scenario run with the full bench
/// observer stack (hash + invariants + telemetry + spans) produces the
/// same trace hash as a bare hash-only run.
#[test]
fn full_instrumentation_does_not_perturb_the_trace() {
    let text = std::fs::read_to_string(scenarios_dir().join("server_crash.json")).unwrap();
    let spec = ScenarioSpec::from_json(&text).unwrap();
    let hash_with = |options: RunOptions| {
        let compiled = spec.compile().unwrap();
        compiled
            .scenario
            .run_injected_observed(compiled.injections, options)
            .trace_hash
            .expect("hash requested")
    };
    let bare = hash_with(RunOptions {
        check_invariants: false,
        invariant_stride: 1,
        trace_hash: true,
        record_spans: false,
        telemetry: None,
        shards: 0,
    });
    let instrumented = hash_with(RunOptions {
        check_invariants: true,
        invariant_stride: 1,
        trace_hash: true,
        record_spans: true,
        telemetry: Some(TelemetryConfig::default()),
        shards: 0,
    });
    assert_eq!(bare, instrumented, "observers perturbed the trace");
}

/// Spans carry the causal structure: roots are externally scheduled
/// (arrivals, initial events, injections), every cause references an
/// earlier span's seq, and managers partition the event alphabet.
#[test]
fn span_stream_is_causally_consistent() {
    let mut opts = BenchOptions::new(scenarios_dir());
    opts.reps = 1;
    opts.filter = Some(vec!["steady_state".into()]);
    let run = run_bench(&opts).expect("bench runs");
    let spans = run.spans_jsonl.expect("spans recorded");
    let mut seen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut roots = 0u64;
    for line in spans.lines().skip(1) {
        let field = |key: &str| -> String {
            let at = line.find(key).unwrap_or_else(|| panic!("{key} in {line}"));
            line[at + key.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == 'n' || *c == 'u' || *c == 'l')
                .collect()
        };
        let seq: u64 = field("\"seq\":").parse().expect("seq");
        let cause = field("\"cause\":");
        if cause == "null" {
            roots += 1;
        } else {
            let cause: u64 = cause.parse().expect("cause seq");
            assert!(
                seen.contains(&cause),
                "span {seq}: cause {cause} not dispatched before it"
            );
        }
        assert!(
            ["membership", "partnership", "stream", "chaos", "engine"]
                .iter()
                .any(|m| line.contains(&format!("\"manager\":\"{m}\""))),
            "unclassified manager in {line}"
        );
        seen.insert(seq);
    }
    assert!(roots > 0, "no externally scheduled spans");
    assert!(
        seen.len() as u64 > roots,
        "no caused spans — cause tracking is dead"
    );
}
