//! Sharded-vs-solo equivalence matrix: every scenario in `scenarios/`,
//! run through the epoch-barrier sharded engine at shard counts
//! {1, 2, 4, 8}, must reproduce the *committed* solo golden trace hash
//! byte-for-byte.
//!
//! Unlike `scenario_matrix`, this test deliberately has no
//! `UPDATE_GOLDEN` path: the golden file is the solo schedule's, and a
//! sharded run is only correct if it matches that schedule with no
//! regeneration. A mismatch here is a sharding bug, never a "new
//! baseline".

use std::path::{Path, PathBuf};

use coolstreaming::{RunOptions, ScenarioSpec};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/scenario_hashes.txt");

/// Shard counts the matrix covers (1 exercises the sharded driver on a
/// single partition, which must still match the solo engine).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn hash_only(shards: usize) -> RunOptions {
    RunOptions {
        check_invariants: false,
        invariant_stride: 0,
        trace_hash: true,
        record_spans: false,
        telemetry: None,
        shards,
    }
}

fn scenario_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> =
        std::fs::read_dir(Path::new(env!("CARGO_MANIFEST_DIR")).join("../scenarios"))
            .expect("scenarios/ directory missing")
            .map(|e| e.expect("readable dir entry").path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
    files.sort();
    files
}

/// Read the committed golden hash for `name` — a parse failure or a
/// missing entry is a test failure, never a rewrite.
fn golden_hash(name: &str) -> u64 {
    let text = std::fs::read_to_string(GOLDEN_PATH).expect("golden file missing");
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() == Some(name) {
            let hex = parts.next().expect("golden line has a hash column");
            return u64::from_str_radix(hex, 16).expect("golden hash parses as hex");
        }
    }
    panic!("{name}: no golden hash committed (run scenario_matrix first)");
}

/// Every scenario × every shard count reproduces the solo golden hash,
/// and the per-shard event totals account for every dispatched event.
#[test]
fn sharded_runs_match_solo_golden_hashes() {
    for path in scenario_files() {
        let text = std::fs::read_to_string(&path).expect("readable scenario file");
        let spec =
            ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let golden = golden_hash(&spec.name);
        for shards in SHARD_COUNTS {
            let compiled = spec
                .compile()
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            let run = compiled
                .scenario
                .run_injected_observed(compiled.injections, hash_only(shards));
            let hash = run.trace_hash.expect("hash requested");
            assert_eq!(
                hash, golden,
                "{} with {shards} shard(s): trace hash {hash:016x} != solo golden {golden:016x}",
                spec.name
            );
            let totals = run
                .artifacts
                .shard_events
                .expect("sharded runs report per-shard totals");
            assert_eq!(totals.len(), shards, "{}: one total per shard", spec.name);
            assert_eq!(
                totals.iter().sum::<u64>(),
                run.artifacts.run_stats.events,
                "{} with {shards} shard(s): shard totals must sum to the event count",
                spec.name
            );
        }
    }
}

/// The solo path reports no shard totals — `shards: 0` must keep using
/// the plain engine, not a one-shard sharded driver.
#[test]
fn solo_runs_report_no_shard_totals() {
    let path = scenario_files()
        .into_iter()
        .find(|p| p.file_stem().is_some_and(|s| s == "steady_state"))
        .expect("steady_state scenario present");
    let text = std::fs::read_to_string(&path).expect("readable scenario file");
    let spec = ScenarioSpec::from_json(&text).expect("steady_state parses");
    let compiled = spec.compile().expect("steady_state compiles");
    let run = compiled
        .scenario
        .run_injected_observed(compiled.injections, hash_only(0));
    assert_eq!(
        run.trace_hash.expect("hash requested"),
        golden_hash("steady_state")
    );
    assert!(run.artifacts.shard_events.is_none());
}
