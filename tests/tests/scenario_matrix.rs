//! The scenario conformance matrix: every file in `scenarios/` must
//! (a) parse strictly under the DSL schema, (b) run to completion under
//! the full-stride [`InvariantChecker`] with zero violations, and
//! (c) reproduce its per-scenario golden trace hash exactly.
//!
//! Regenerate the hashes after an intentional protocol change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cs-integration --test scenario_matrix
//! ```

use std::path::{Path, PathBuf};

use coolstreaming::{RunOptions, ScenarioSpec};
use cs_integration::check_golden_in;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/scenario_hashes.txt");
const GOLDEN_HEADER: &str = "Golden per-scenario trace hashes for scenarios/*.json. Regenerate: UPDATE_GOLDEN=1 cargo test -p cs-integration --test scenario_matrix";

const FULL_CHECK: RunOptions = RunOptions {
    check_invariants: true,
    invariant_stride: 1,
    trace_hash: true,
    record_spans: false,
    telemetry: None,
    shards: 0,
};

/// The library every checkout must ship (ISSUE: >= 8 named scenarios).
const EXPECTED: [&str; 9] = [
    "bootstrap_flap",
    "congestion_storm",
    "flash_crowd",
    "free_rider",
    "nat_dominant",
    "regional_outage",
    "server_crash",
    "steady_state",
    "upload_skew",
];

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../scenarios")
}

fn scenario_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ directory missing")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    files
}

fn load(path: &Path) -> ScenarioSpec {
    let text = std::fs::read_to_string(path).expect("readable scenario file");
    ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The library is complete: at least the expected named scenarios exist,
/// and each file's `name` matches its file stem (the golden-hash key).
#[test]
fn library_covers_the_expected_scenarios() {
    let files = scenario_files();
    assert!(
        files.len() >= 8,
        "scenario library shrank: {} files",
        files.len()
    );
    let names: Vec<String> = files.iter().map(|p| load(p).name).collect();
    for expected in EXPECTED {
        assert!(
            names.iter().any(|n| n == expected),
            "scenario {expected:?} missing from scenarios/ (have: {names:?})"
        );
    }
    for (file, name) in files.iter().zip(&names) {
        let stem = file.file_stem().unwrap().to_string_lossy();
        assert_eq!(*name, stem, "{}: name/file mismatch", file.display());
    }
}

/// Run every scenario under the invariant checker and diff its trace
/// hash against the committed golden value.
#[test]
fn matrix_is_invariant_clean_with_golden_hashes() {
    for path in scenario_files() {
        let spec = load(&path);
        let compiled = spec
            .compile()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let run = compiled
            .scenario
            .run_injected_observed(compiled.injections, FULL_CHECK);
        let chk = run.invariants.expect("checker requested");
        assert!(chk.is_clean(), "{}: {}", spec.name, chk.report());
        assert!(
            run.artifacts.world.stats.arrivals > 0,
            "{}: nobody arrived",
            spec.name
        );
        check_golden_in(
            GOLDEN_PATH,
            GOLDEN_HEADER,
            &spec.name,
            run.trace_hash.expect("hash requested"),
        );
    }
}

/// Chaos injections visibly happen: spot-check observable effects of a
/// few scenarios so the matrix can't silently degenerate into nine
/// steady-state runs.
#[test]
fn injections_have_observable_effects() {
    // server_crash: the restart leaves server 0 alive at the horizon,
    // and its network join timestamp equals the restart time — which can
    // only happen if the crash took it down first.
    let compiled = load(&scenarios_dir().join("server_crash.json"))
        .compile()
        .unwrap();
    let run = compiled
        .scenario
        .run_injected_observed(compiled.injections, RunOptions::default());
    let world = &run.artifacts.world;
    assert!(
        world.net.is_alive(world.servers[0]),
        "server 0 was not restarted"
    );
    assert_eq!(
        world.net.node(world.servers[0]).joined_at,
        cs_sim::SimTime::from_secs(420),
        "server 0 was never crashed + revived"
    );

    // regional_outage: outage departures recorded, and some rejoined.
    let compiled = load(&scenarios_dir().join("regional_outage.json"))
        .compile()
        .unwrap();
    let run = compiled
        .scenario
        .run_injected_observed(compiled.injections, RunOptions::default());
    let world = &run.artifacts.world;
    assert!(world.stats.outage_departs > 0, "outage hit nobody");
    let rejoined = world
        .sessions
        .iter()
        .filter(|s| s.class.is_user() && s.retry_index > 0)
        .count();
    assert!(rejoined > 0, "partition healed but nobody rejoined");

    // free_rider: floor-clamped uploads exist among the sessions.
    let compiled = load(&scenarios_dir().join("free_rider.json"))
        .compile()
        .unwrap();
    let run = compiled
        .scenario
        .run_injected_observed(compiled.injections, RunOptions::default());
    let floored = run
        .artifacts
        .world
        .sessions
        .iter()
        .filter(|s| s.class.is_user() && s.upload == cs_net::Bandwidth::FLOOR)
        .count();
    assert!(floored > 0, "no free-riders materialized");

    // congestion_storm: the storm window sees a much higher arrival rate
    // than the preceding calm window of equal width.
    let compiled = load(&scenarios_dir().join("congestion_storm.json"))
        .compile()
        .unwrap();
    let arrivals = compiled.scenario.workload.generate(
        compiled.scenario.seed,
        compiled.scenario.start,
        compiled.scenario.horizon,
    );
    let in_window = |a: u64, b: u64| {
        arrivals
            .iter()
            .filter(|(t, _)| {
                *t >= cs_sim::SimTime::from_secs(a) && *t < cs_sim::SimTime::from_secs(b)
            })
            .count()
    };
    let calm = in_window(60, 180);
    let storm = in_window(180, 300);
    assert!(
        storm > calm * 2,
        "storm window {storm} not ≫ calm window {calm}"
    );
}

/// Determinism (ISSUE satellite): the same scenario file and seed give a
/// byte-identical trace hash on repeated runs; a different seed gives a
/// different hash.
#[test]
fn scenario_files_are_deterministic_in_seed() {
    let hash_with = |seed: Option<u64>| {
        let spec = load(&scenarios_dir().join("server_crash.json"));
        let mut compiled = spec.compile().unwrap();
        if let Some(s) = seed {
            compiled.scenario.seed = s;
        }
        let options = RunOptions {
            check_invariants: false,
            invariant_stride: 1,
            trace_hash: true,
            record_spans: false,
            telemetry: None,
            shards: 0,
        };
        compiled
            .scenario
            .run_injected_observed(compiled.injections, options)
            .trace_hash
            .expect("hash requested")
    };
    let a = hash_with(None);
    let b = hash_with(None);
    assert_eq!(a, b, "same file + seed must replay byte-identically");
    let c = hash_with(Some(777));
    assert_ne!(a, c, "different seed should perturb the event sequence");
}
