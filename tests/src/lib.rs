//! Host crate for the cross-crate integration tests in `tests/`.
//!
//! Also home of the golden trace-hash helper shared by the invariant
//! oracles and the scenario conformance matrix.

#![forbid(unsafe_code)]

use std::sync::Mutex;

/// Serializes golden-file rewrites when `UPDATE_GOLDEN=1` (tests run on
/// parallel threads within one process).
static GOLDEN_LOCK: Mutex<()> = Mutex::new(());

/// Compare `hash` against the golden entry `name` in the file at
/// `golden_path`, or record it when `UPDATE_GOLDEN=1` is set. `header`
/// is the comment line written when creating the file from scratch.
///
/// # Panics
///
/// Panics (failing the calling test) when the entry is absent or the
/// hash diverges from the recorded golden value.
pub fn check_golden_in(golden_path: &str, header: &str, name: &str, hash: u64) {
    let _guard = GOLDEN_LOCK.lock().unwrap();
    let text = std::fs::read_to_string(golden_path).unwrap_or_default();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let mut lines: Vec<String> = text
            .lines()
            .filter(|l| l.starts_with('#') || l.split_whitespace().next() != Some(name))
            .map(String::from)
            .collect();
        if lines.is_empty() {
            lines.push(format!("# {header}"));
        }
        lines.push(format!("{name} {hash:016x}"));
        lines.sort_by_key(|l| !l.starts_with('#')); // comments first, then entries
        std::fs::write(golden_path, lines.join("\n") + "\n").expect("write goldens");
        return;
    }
    let want = text
        .lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            let mut it = l.split_whitespace();
            (it.next() == Some(name)).then(|| it.next().expect("hash column").to_string())
        })
        .unwrap_or_else(|| {
            panic!("no golden entry {name:?} in {golden_path}; run with UPDATE_GOLDEN=1")
        });
    assert_eq!(
        format!("{hash:016x}"),
        want,
        "trace hash for {name:?} diverged from the golden snapshot — \
         if the event sequence changed intentionally, regenerate with UPDATE_GOLDEN=1"
    );
}
